"""Query executor: interprets SELECT ASTs against a :class:`Catalog`.

Execution follows the standard logical order:

1. CTE materialization,
2. FROM (scans, derived tables, joins),
3. WHERE,
4. GROUP BY + aggregate evaluation,
5. HAVING,
6. SELECT projection (with Star expansion),
7. DISTINCT,
8. ORDER BY,
9. LIMIT / OFFSET,

plus UNION / INTERSECT / EXCEPT over whole SELECTs.  Correlated subqueries in
WHERE/HAVING/SELECT are executed per-row with the outer row's environment as
their correlation context.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.engine.aggregates import is_aggregate_function, make_accumulator
from repro.engine.expressions import Environment, ExpressionEvaluator
from repro.engine.functions import is_scalar_function
from repro.engine.table import QueryResult, Table
from repro.sql.analyzer import Analyzer
from repro.sql.ast_nodes import (
    ColumnRef,
    FunctionCall,
    Join,
    Select,
    SelectItem,
    SetOperation,
    SqlNode,
    Star,
    SubqueryRef,
    TableRef,
)
from repro.sql.printer import to_sql
from repro.sql.schema import AttributeRole, ColumnSchema, DataType, ResultSchema, TableSchema


class Executor:
    """Executes SELECT statements against the tables registered in a catalog."""

    def __init__(self, catalog: "Catalog", parameters: dict[str, Any] | None = None) -> None:
        # Imported lazily in catalog.py; typed by name to avoid a cycle here.
        self._catalog = catalog
        self._parameters = parameters or {}

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def execute(self, node: SqlNode) -> QueryResult:
        """Execute a SELECT or set operation and return its materialized result."""
        if isinstance(node, SetOperation):
            return self._execute_set_operation(node, outer_env=None, ctes={})
        if isinstance(node, Select):
            return self._execute_select(node, outer_env=None, ctes={})
        raise ExecutionError(f"Cannot execute node of type {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Set operations
    # ------------------------------------------------------------------ #

    def _execute_set_operation(
        self,
        node: SetOperation,
        outer_env: Environment | None,
        ctes: dict[str, Table],
    ) -> QueryResult:
        left = self._execute_any(node.left, outer_env, ctes)
        right = self._execute_any(node.right, outer_env, ctes)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                f"Set operation requires matching column counts "
                f"({len(left.columns)} vs {len(right.columns)})"
            )
        if node.op == "UNION":
            rows = list(left.rows) + list(right.rows)
            if not node.all:
                rows = _dedupe(rows)
        elif node.op == "INTERSECT":
            right_set = set(right.rows)
            rows = [row for row in left.rows if row in right_set]
            if not node.all:
                rows = _dedupe(rows)
        elif node.op == "EXCEPT":
            right_set = set(right.rows)
            rows = [row for row in left.rows if row not in right_set]
            if not node.all:
                rows = _dedupe(rows)
        else:
            raise ExecutionError(f"Unknown set operation {node.op!r}")
        return QueryResult(columns=list(left.columns), rows=rows, schema=left.schema)

    def _execute_any(
        self,
        node: SqlNode,
        outer_env: Environment | None,
        ctes: dict[str, Table],
    ) -> QueryResult:
        if isinstance(node, SetOperation):
            return self._execute_set_operation(node, outer_env, ctes)
        if isinstance(node, Select):
            return self._execute_select(node, outer_env, ctes)
        raise ExecutionError(f"Cannot execute node of type {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # SELECT execution
    # ------------------------------------------------------------------ #

    def _execute_select(
        self,
        query: Select,
        outer_env: Environment | None,
        ctes: dict[str, Table],
    ) -> QueryResult:
        # 1. CTEs visible to this query (and to its subqueries).
        local_ctes = dict(ctes)
        for cte in query.ctes:
            cte_result = self._execute_any(cte.query, outer_env, local_ctes)
            columns = cte.columns or cte_result.columns
            if len(columns) != len(cte_result.columns):
                raise ExecutionError(
                    f"CTE {cte.name!r} declares {len(columns)} columns but its query "
                    f"produces {len(cte_result.columns)}"
                )
            local_ctes[cte.name.lower()] = Table(
                name=cte.name, columns=columns, rows=cte_result.rows
            )

        # Uncorrelated subqueries are executed once and memoized: a subquery
        # that never resolves a column through its outer environment cannot
        # depend on the current row, so its result is reusable for every row.
        subquery_cache: dict[str, QueryResult] = {}

        def run_subquery(sub: Select, env: Environment) -> QueryResult:
            key = to_sql(sub)
            if key in subquery_cache:
                return subquery_cache[key]
            cacheable = not self._references_outer_names(sub)
            probe = _CorrelationProbe(env)
            result = self._execute_select(sub, outer_env=probe, ctes=local_ctes)
            if cacheable and not probe.correlated:
                subquery_cache[key] = result
            return result

        evaluator = ExpressionEvaluator(
            subquery_executor=run_subquery, parameters=self._parameters
        )

        # 2. FROM
        environments = self._execute_from(query.from_clause, outer_env, local_ctes, evaluator)

        # 3. WHERE
        if query.where is not None:
            environments = [
                env for env in environments if evaluator.is_truthy(query.where, env)
            ]

        # 4./5. GROUP BY + HAVING, 6. projection
        has_aggregates = self._query_has_aggregates(query)
        if query.group_by or has_aggregates:
            rows = self._execute_grouped(query, environments, run_subquery)
        else:
            rows = self._execute_projection(query, environments, evaluator)

        columns = self._output_columns(query, environments)

        # 7. DISTINCT
        if query.distinct:
            rows = _dedupe(rows)

        # 8. ORDER BY
        if query.order_by:
            rows = self._execute_order_by(query, rows, columns, environments, run_subquery)

        # 9. LIMIT / OFFSET
        offset = query.offset or 0
        if offset:
            rows = rows[offset:]
        if query.limit is not None:
            rows = rows[: query.limit]

        schema = self._result_schema(query, columns, rows)
        return QueryResult(columns=columns, rows=rows, schema=schema)

    # ------------------------------------------------------------------ #
    # FROM clause
    # ------------------------------------------------------------------ #

    def _execute_from(
        self,
        node: SqlNode | None,
        outer_env: Environment | None,
        ctes: dict[str, Table],
        evaluator: ExpressionEvaluator,
    ) -> list[Environment]:
        if node is None:
            env = Environment(parent=outer_env)
            return [env]
        if isinstance(node, TableRef):
            table = ctes.get(node.name.lower())
            if table is None:
                table = self._catalog.table(node.name)
            return [
                self._bind_row(node.binding_name, table.column_names, row, outer_env)
                for row in table.rows()
            ]
        if isinstance(node, SubqueryRef):
            result = self._execute_any(node.query, outer_env, ctes)
            return [
                self._bind_row(node.alias, result.columns, row, outer_env)
                for row in result.rows
            ]
        if isinstance(node, Join):
            return self._execute_join(node, outer_env, ctes, evaluator)
        raise ExecutionError(f"Unsupported FROM item {type(node).__name__}")

    @staticmethod
    def _bind_row(
        binding_name: str,
        columns: list[str],
        row: tuple[Any, ...],
        outer_env: Environment | None,
    ) -> Environment:
        env = Environment(parent=outer_env)
        env.bind(binding_name, dict(zip(columns, row)))
        return env

    def _execute_join(
        self,
        node: Join,
        outer_env: Environment | None,
        ctes: dict[str, Table],
        evaluator: ExpressionEvaluator,
    ) -> list[Environment]:
        left_envs = self._execute_from(node.left, outer_env, ctes, evaluator)
        right_envs = self._execute_from(node.right, outer_env, ctes, evaluator)

        condition = node.condition
        if node.using:
            condition = self._using_condition(node, left_envs, right_envs)

        def matches(joined: Environment) -> bool:
            if condition is None:
                return True
            return evaluator.is_truthy(condition, joined)

        results: list[Environment] = []
        join_type = node.join_type

        if join_type in ("INNER", "CROSS"):
            for left_env in left_envs:
                for right_env in right_envs:
                    joined = left_env.merged_with(right_env)
                    if join_type == "CROSS" or matches(joined):
                        results.append(joined)
            return results

        if join_type == "LEFT":
            right_columns = self._binding_columns(right_envs)
            for left_env in left_envs:
                matched = False
                for right_env in right_envs:
                    joined = left_env.merged_with(right_env)
                    if matches(joined):
                        results.append(joined)
                        matched = True
                if not matched:
                    results.append(self._pad_env(left_env, right_columns))
            return results

        if join_type == "RIGHT":
            left_columns = self._binding_columns(left_envs)
            for right_env in right_envs:
                matched = False
                for left_env in left_envs:
                    joined = left_env.merged_with(right_env)
                    if matches(joined):
                        results.append(joined)
                        matched = True
                if not matched:
                    results.append(self._pad_env(right_env, left_columns))
            return results

        if join_type == "FULL":
            right_columns = self._binding_columns(right_envs)
            left_columns = self._binding_columns(left_envs)
            matched_right: set[int] = set()
            for left_env in left_envs:
                matched = False
                for index, right_env in enumerate(right_envs):
                    joined = left_env.merged_with(right_env)
                    if matches(joined):
                        results.append(joined)
                        matched = True
                        matched_right.add(index)
                if not matched:
                    results.append(self._pad_env(left_env, right_columns))
            for index, right_env in enumerate(right_envs):
                if index not in matched_right:
                    results.append(self._pad_env(right_env, left_columns))
            return results

        raise ExecutionError(f"Unsupported join type {join_type!r}")

    @staticmethod
    def _binding_columns(envs: list[Environment]) -> dict[str, list[str]]:
        """Column names per binding of one side of a join (from any sample row)."""
        if not envs:
            return {}
        sample = envs[0]
        return {binding: list(values.keys()) for binding, values in sample.bindings.items()}

    @staticmethod
    def _pad_env(env: Environment, other_columns: dict[str, list[str]]) -> Environment:
        """Extend ``env`` with NULLs for the other join side's bindings."""
        padded = Environment(parent=env.parent)
        padded.bindings = dict(env.bindings)
        for binding, columns in other_columns.items():
            padded.bindings[binding] = {column: None for column in columns}
        return padded

    @staticmethod
    def _using_condition(
        node: Join, left_envs: list[Environment], right_envs: list[Environment]
    ) -> SqlNode | None:
        """Rewrite USING (a, b) into an explicit equality condition."""
        if not left_envs or not right_envs:
            return None
        left_binding = next(iter(left_envs[0].bindings))
        right_binding = next(iter(right_envs[0].bindings))
        condition: SqlNode | None = None
        from repro.sql.ast_nodes import BinaryOp

        for column in node.using:
            equality = BinaryOp(
                op="=",
                left=ColumnRef(name=column, table=left_binding),
                right=ColumnRef(name=column, table=right_binding),
            )
            condition = equality if condition is None else BinaryOp("AND", condition, equality)
        return condition

    # ------------------------------------------------------------------ #
    # Projection (non-grouped)
    # ------------------------------------------------------------------ #

    def _execute_projection(
        self,
        query: Select,
        environments: list[Environment],
        evaluator: ExpressionEvaluator,
    ) -> list[tuple[Any, ...]]:
        rows: list[tuple[Any, ...]] = []
        for env in environments:
            values: list[Any] = []
            for item in query.select_items:
                if isinstance(item.expr, Star):
                    values.extend(self._expand_star_values(item.expr, env))
                else:
                    value = evaluator.evaluate(item.expr, env)
                    values.append(value)
                    if item.alias:
                        env.aliases[item.alias] = value
            rows.append(tuple(values))
        return rows

    @staticmethod
    def _expand_star_values(star: Star, env: Environment) -> list[Any]:
        values = []
        for binding, _column, value in env.all_values():
            if star.table and star.table != binding:
                continue
            values.append(value)
        return values

    # ------------------------------------------------------------------ #
    # Grouped execution
    # ------------------------------------------------------------------ #

    def _references_outer_names(self, query: Select) -> bool:
        """Static correlation check: does ``query`` reference names it does not bind?

        Used to decide whether a subquery's result may be memoized across outer
        rows.  The check over-approximates correlation (unknown unqualified
        names count as correlated), which only costs performance, never
        correctness.
        """
        from repro.sql.ast_nodes import CommonTableExpr

        bound_tables: set[str] = set()
        bound_columns: set[str] = set()
        for node in query.walk():
            if isinstance(node, TableRef):
                bound_tables.add(node.binding_name)
                if self._catalog.has_table(node.name):
                    bound_columns.update(self._catalog.table(node.name).column_names)
            elif isinstance(node, SubqueryRef):
                bound_tables.add(node.alias)
                bound_columns.update(node.query.output_names())
            elif isinstance(node, CommonTableExpr):
                bound_tables.add(node.name)
                bound_columns.update(node.columns or node.query.output_names())
            elif isinstance(node, SelectItem) and node.alias:
                bound_columns.add(node.alias)
        for ref in query.find_all(ColumnRef):
            if ref.table:
                if ref.table not in bound_tables:
                    return True
            elif ref.name not in bound_columns:
                return True
        return False

    @staticmethod
    def _walk_same_scope(node: SqlNode):
        """Pre-order walk of an expression that does not descend into subqueries.

        Aggregates inside a nested SELECT belong to that subquery's scope and
        must not be computed by the enclosing query's GROUP BY operator.
        """
        yield node
        for child in node.children():
            if isinstance(child, Select):
                continue
            yield from Executor._walk_same_scope(child)

    def _query_has_aggregates(self, query: Select) -> bool:
        nodes: list[SqlNode] = [item.expr for item in query.select_items]
        if query.having is not None:
            nodes.append(query.having)
        nodes.extend(item.expr for item in query.order_by)
        for node in nodes:
            for descendant in self._walk_same_scope(node):
                if (
                    isinstance(descendant, FunctionCall)
                    and is_aggregate_function(descendant.name)
                    and not is_scalar_function(descendant.name)
                ):
                    return True
        return False

    def _collect_aggregate_calls(self, query: Select) -> list[FunctionCall]:
        calls: dict[str, FunctionCall] = {}
        nodes: list[SqlNode] = [item.expr for item in query.select_items]
        if query.having is not None:
            nodes.append(query.having)
        nodes.extend(item.expr for item in query.order_by)
        for node in nodes:
            for descendant in self._walk_same_scope(node):
                if isinstance(descendant, FunctionCall) and is_aggregate_function(descendant.name):
                    calls.setdefault(to_sql(descendant), descendant)
        return list(calls.values())

    def _execute_grouped(
        self,
        query: Select,
        environments: list[Environment],
        run_subquery,
    ) -> list[tuple[Any, ...]]:
        base_evaluator = ExpressionEvaluator(
            subquery_executor=run_subquery, parameters=self._parameters
        )
        aggregate_calls = self._collect_aggregate_calls(query)

        # Partition rows into groups keyed by the GROUP BY expression values.
        groups: dict[tuple, list[Environment]] = {}
        group_order: list[tuple] = []
        for env in environments:
            key = tuple(
                _hashable(base_evaluator.evaluate(expr, env)) for expr in query.group_by
            )
            if key not in groups:
                groups[key] = []
                group_order.append(key)
            groups[key].append(env)

        # A query with aggregates but no GROUP BY forms one global group, even
        # over zero input rows.
        if not query.group_by and not groups:
            groups[()] = []
            group_order.append(())

        rows: list[tuple[Any, ...]] = []
        for key in group_order:
            members = groups[key]
            aggregate_values: dict[str, Any] = {}
            for call in aggregate_calls:
                accumulator = make_accumulator(
                    call.name,
                    is_star=bool(call.args) and isinstance(call.args[0], Star) or not call.args,
                    distinct=call.distinct,
                )
                for env in members:
                    if accumulator.counts_rows:
                        accumulator.add(1)
                    else:
                        value = base_evaluator.evaluate(call.args[0], env)
                        accumulator.add(value)
                aggregate_values[to_sql(call)] = accumulator.result()

            representative = members[0] if members else Environment()
            group_evaluator = ExpressionEvaluator(
                subquery_executor=run_subquery,
                aggregate_values=aggregate_values,
                parameters=self._parameters,
            )

            if query.having is not None and not group_evaluator.is_truthy(
                query.having, representative
            ):
                continue

            values: list[Any] = []
            for item in query.select_items:
                if isinstance(item.expr, Star):
                    raise ExecutionError("SELECT * cannot be combined with GROUP BY")
                value = group_evaluator.evaluate(item.expr, representative)
                values.append(value)
                if item.alias:
                    representative.aliases[item.alias] = value
            rows.append(tuple(values))
        return rows

    # ------------------------------------------------------------------ #
    # ORDER BY
    # ------------------------------------------------------------------ #

    def _execute_order_by(
        self,
        query: Select,
        rows: list[tuple[Any, ...]],
        columns: list[str],
        environments: list[Environment],
        run_subquery,
    ) -> list[tuple[Any, ...]]:
        """Sort result rows.

        ORDER BY expressions may reference output columns (by alias or by the
        expression's natural name) or be positional (1-based integers).  Rows
        are sorted stably, applying keys right-to-left.
        """
        evaluator = ExpressionEvaluator(
            subquery_executor=run_subquery, parameters=self._parameters
        )

        def key_value(row: tuple[Any, ...], item_expr: SqlNode) -> Any:
            from repro.sql.ast_nodes import Literal

            if isinstance(item_expr, Literal) and isinstance(item_expr.value, int):
                index = item_expr.value - 1
                if index < 0 or index >= len(row):
                    raise ExecutionError(f"ORDER BY position {item_expr.value} out of range")
                return row[index]
            if isinstance(item_expr, ColumnRef) and item_expr.name in columns:
                return row[columns.index(item_expr.name)]
            name = SelectItem(expr=item_expr).output_name()
            if name in columns:
                return row[columns.index(name)]
            # Fall back to evaluating against a synthetic environment exposing
            # the output columns as aliases.
            env = Environment()
            env.aliases = dict(zip(columns, row))
            return evaluator.evaluate(item_expr, env)

        ordered = list(rows)
        for item in reversed(query.order_by):
            def sort_key(row: tuple[Any, ...], item=item):
                value = key_value(row, item.expr)
                # None ordering: place according to nulls_last under both
                # ascending and descending sorts.
                is_null = value is None
                return (is_null if item.nulls_last else not is_null, _orderable(value))

            ordered.sort(key=sort_key, reverse=item.descending)
            # Re-sort so NULL placement is unaffected by reverse.
            if item.descending:
                nulls = [row for row in ordered if key_value(row, item.expr) is None]
                non_nulls = [row for row in ordered if key_value(row, item.expr) is not None]
                ordered = non_nulls + nulls if item.nulls_last else nulls + non_nulls
        return ordered

    # ------------------------------------------------------------------ #
    # Output schema
    # ------------------------------------------------------------------ #

    def _output_columns(self, query: Select, environments: list[Environment]) -> list[str]:
        columns: list[str] = []
        for item in query.select_items:
            if isinstance(item.expr, Star):
                columns.extend(self._star_column_names(item.expr, environments))
            else:
                columns.append(item.output_name())
        # Disambiguate duplicated output names (e.g. join of same-named columns).
        seen: dict[str, int] = {}
        unique: list[str] = []
        for column in columns:
            if column in seen:
                seen[column] += 1
                unique.append(f"{column}_{seen[column]}")
            else:
                seen[column] = 0
                unique.append(column)
        return unique

    def _star_column_names(self, star: Star, environments: list[Environment]) -> list[str]:
        if environments:
            sample = environments[0]
            names = []
            for binding, values in sample.bindings.items():
                if star.table and star.table != binding:
                    continue
                names.extend(values.keys())
            if names:
                return names
        # No rows: fall back to catalog schemas via the analyzer where possible.
        return ["*"]

    def _result_schema(
        self, query: Select, columns: list[str], rows: list[tuple[Any, ...]]
    ) -> ResultSchema:
        try:
            analyzer = Analyzer(self._catalog.schemas())
            inferred = analyzer.result_schema(query)
            if len(inferred.columns) == len(columns):
                renamed = tuple(
                    ColumnSchema(name=name, data_type=column.data_type, role=column.role)
                    for name, column in zip(columns, inferred.columns)
                )
                return ResultSchema(columns=renamed)
        except Exception:  # noqa: BLE001 - schema inference is best effort
            pass
        # Fall back to inferring types from the materialized values.
        schemas = []
        for index, name in enumerate(columns):
            values = [row[index] for row in rows if index < len(row)]
            data_type = DataType.NULL
            for value in values:
                data_type = DataType.unify(data_type, DataType.of_value(value))
            non_null = [value for value in values if value is not None]
            role = AttributeRole.from_data_type(data_type, len(set(map(_hashable, non_null))))
            schemas.append(ColumnSchema(name=name, data_type=data_type, role=role))
        return ResultSchema(columns=tuple(schemas))


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def _dedupe(rows: list[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    seen: set[tuple[Any, ...]] = set()
    result = []
    for row in rows:
        key = tuple(_hashable(value) for value in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


class _CorrelationProbe(Environment):
    """Environment proxy that records whether an outer column was ever used."""

    def __init__(self, inner: Environment) -> None:
        super().__init__(parent=inner)
        self.correlated = False

    def resolve(self, column: ColumnRef) -> Any:
        self.correlated = True
        if self.parent is None:
            raise ExecutionError(f"Unknown column {column.qualified_name!r}")
        return self.parent.resolve(column)


class _Orderable:
    """Total-order wrapper so heterogeneous columns can still be sorted."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Orderable") -> bool:
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Orderable) and self.value == other.value


def _orderable(value: Any) -> _Orderable:
    return _Orderable(value)


# Imported at the bottom only for type checkers; the executor receives the
# catalog instance at construction time.
from repro.engine.catalog import Catalog  # noqa: E402  (intentional late import)
