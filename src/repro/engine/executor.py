"""Query executor: compiles SELECT ASTs to physical plans and runs them.

Execution is compile-then-run:

1. the :class:`~repro.engine.planner.Planner` lowers the AST to a logical
   plan (FROM → WHERE → GROUP BY/HAVING → SELECT → DISTINCT → ORDER BY →
   LIMIT, plus CTE materialization and set operations);
2. :func:`lower_plan` lowers the logical plan to executable physical
   operators (``plan_nodes``), choosing hash joins when equi-join keys can be
   extracted from the ON condition and vectorized nested loops otherwise;
3. the physical plan pulls columnar batches from the tables and evaluates
   expressions column-at-a-time via the vectorized evaluator.

Correlated subqueries in WHERE/HAVING/SELECT run per outer row with the outer
row's batch view as their correlation context; uncorrelated subqueries are
executed once per enclosing SELECT execution and memoized.  Compiled plans
are stateless and reusable — the catalog keeps a plan cache keyed by SQL
text so repeated query shapes skip planning entirely.
"""

from __future__ import annotations

import time
from typing import Any

from repro.errors import ExecutionError, QueryTimeoutError
from repro.engine.expressions import CorrelationProbe, Environment
from repro.engine.plan_nodes import (
    AggregateNode,
    CteExec,
    CteNode,
    DerivedScanExec,
    DerivedScanNode,
    DistinctExec,
    DistinctNode,
    FilterExec,
    FilterNode,
    HashAggregateExec,
    IndexScanExec,
    IndexScanNode,
    JoinExec,
    JoinNode,
    LimitExec,
    LimitNode,
    PhysicalNode,
    PlanNode,
    ProjectExec,
    ProjectNode,
    ScanExec,
    ScanNode,
    SetOpExec,
    SetOpNode,
    SortExec,
    SortNode,
    WindowExec,
    WindowNode,
    hashable,
)
from repro.engine.optimizer import optimize_plan, plan_binding_infos, plan_output_names
from repro.engine.planner import Planner
from repro.engine.table import QueryResult, Table
from repro.sql.analyzer import Analyzer, references_outer_names
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Select,
    SetOperation,
    SqlNode,
)
from repro.sql.printer import to_sql
from repro.sql.schema import AttributeRole, ColumnSchema, DataType, ResultSchema

#: Optional fault-injection hook, called once per top-level
#: :meth:`Executor.execute` entry (never for nested subqueries).  Strictly
#: ``None`` in production — the serving layer's deterministic chaos harness
#: (``repro.serving.faults``) installs one to force a raise at query K.  The
#: hook is process-local: installing it in the frontend does not affect
#: process-tier workers.
_fault_hook = None


def install_fault_hook(hook):
    """Install (or with ``None`` remove) the executor fault hook.

    Returns the previously installed hook so callers can restore it.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    return previous


class PlanResult:
    """Lightweight internal result of running a nested plan (no schema)."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: list[str], rows: list[tuple[Any, ...]]) -> None:
        self.columns = columns
        self.rows = rows

    @property
    def row_count(self) -> int:
        return len(self.rows)


class ExecutionContext:
    """Runtime state threaded through physical operator execution.

    One context exists per executing SELECT: it carries the catalog, the CTE
    tables visible in scope, the enclosing query's row environment (for
    correlated references), query parameters and the per-SELECT memo of
    uncorrelated subquery results.  Nested SELECTs (CTE definitions, derived
    tables, set-operation legs, subqueries) run under child contexts with
    fresh memos, mirroring lexical scoping.
    """

    __slots__ = (
        "executor",
        "catalog",
        "ctes",
        "outer",
        "parameters",
        "subquery_cache",
        "deadline",
    )

    def __init__(
        self,
        executor: "Executor",
        catalog,
        ctes: dict[str, Table],
        outer: Environment | None,
        parameters: dict[str, Any],
        subquery_cache: dict[str, PlanResult] | None = None,
        deadline: float | None = None,
    ) -> None:
        self.executor = executor
        self.catalog = catalog
        self.ctes = ctes
        self.outer = outer
        self.parameters = parameters
        self.subquery_cache = {} if subquery_cache is None else subquery_cache
        self.deadline = deadline

    def with_ctes(self, ctes: dict[str, Table]) -> "ExecutionContext":
        """Same scope with an extended CTE map (WITH materialization)."""
        return ExecutionContext(
            self.executor,
            self.catalog,
            ctes,
            self.outer,
            self.parameters,
            self.subquery_cache,
            self.deadline,
        )

    def without_outer(self) -> "ExecutionContext":
        """Same scope with outer correlation hidden (ORDER BY evaluation)."""
        return ExecutionContext(
            self.executor,
            self.catalog,
            self.ctes,
            None,
            self.parameters,
            self.subquery_cache,
            self.deadline,
        )

    def fresh(self) -> "ExecutionContext":
        """A child SELECT scope: same ctes/outer, fresh subquery memo."""
        return ExecutionContext(
            self.executor,
            self.catalog,
            self.ctes,
            self.outer,
            self.parameters,
            None,
            self.deadline,
        )

    def checkpoint(self) -> None:
        """Cooperative cancellation point (called between operators/batches).

        Free when no deadline is set (one attribute test); past the deadline
        it raises :class:`~repro.errors.QueryTimeoutError`, unwinding the
        whole execution so a runaway query releases its worker instead of
        holding it hostage.
        """
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(
                "Query exceeded its deadline and was cancelled at an executor checkpoint"
            )

    def run_subquery(self, query: Select, row_env: Environment) -> PlanResult:
        """Execute a nested subquery with ``row_env`` as correlation context."""
        return self.executor.run_subquery(self, query, row_env)


# --------------------------------------------------------------------------- #
# Logical → physical lowering
# --------------------------------------------------------------------------- #


def lower_plan(
    plan: PlanNode, catalog, cte_columns: dict[str, list[str] | None] | None = None
) -> PhysicalNode:
    """Lower a logical plan to a tree of executable physical operators.

    ``cte_columns`` maps lexically visible CTE names (lowercase) to their
    output column names (or None when unknown); it drives join-key side
    analysis, which must mirror what name resolution will do at run time.
    """
    return _Lowerer(catalog, dict(cte_columns or {})).lower(plan)


class _Lowerer:
    def __init__(self, catalog, cte_columns: dict[str, list[str] | None]) -> None:
        self._catalog = catalog
        self._cte_columns = cte_columns

    def lower(self, plan: PlanNode) -> PhysicalNode:
        if isinstance(plan, CteNode):
            return self._lower_ctes(plan)
        if isinstance(plan, ScanNode):
            return ScanExec(
                table_name=plan.table_name,
                binding_name=plan.binding_name,
                columns=list(plan.columns) if plan.columns is not None else None,
            )
        if isinstance(plan, IndexScanNode):
            return IndexScanExec(
                table_name=plan.table_name,
                binding_name=plan.binding_name,
                access=plan.access,
                columns=list(plan.columns) if plan.columns is not None else None,
            )
        if isinstance(plan, DerivedScanNode):
            return DerivedScanExec(alias=plan.alias, plan=self.lower(plan.input))
        if isinstance(plan, JoinNode):
            return self._lower_join(plan)
        if isinstance(plan, FilterNode):
            return FilterExec(
                input=self.lower(plan.input), predicate=plan.predicate, phase=plan.phase
            )
        if isinstance(plan, AggregateNode):
            return HashAggregateExec(
                group_by=list(plan.group_by),
                aggregates=list(plan.aggregates),  # type: ignore[arg-type]
                input=self.lower(plan.input),
            )
        if isinstance(plan, WindowNode):
            return WindowExec(
                windows=list(plan.windows),
                input=self.lower(plan.input),
                index_orders=dict(plan.index_orders),
                scan_table=(
                    plan.input.table_name
                    if isinstance(plan.input, ScanNode)
                    else None
                ),
            )
        if isinstance(plan, ProjectNode):
            below = plan.input
            while isinstance(below, (FilterNode, WindowNode)):
                below = below.input
            return ProjectExec(
                items=list(plan.items),
                input=self.lower(plan.input),
                allow_star=not isinstance(below, AggregateNode),
            )
        if isinstance(plan, DistinctNode):
            return DistinctExec(input=self.lower(plan.input))
        if isinstance(plan, SortNode):
            return SortExec(order_by=list(plan.order_by), input=self.lower(plan.input))
        if isinstance(plan, LimitNode):
            return LimitExec(
                input=self.lower(plan.input), limit=plan.limit, offset=plan.offset
            )
        if isinstance(plan, SetOpNode):
            return SetOpExec(
                op=plan.op, left=self.lower(plan.left), right=self.lower(plan.right), all=plan.all
            )
        raise ExecutionError(f"Cannot lower plan node {type(plan).__name__}")

    def _lower_ctes(self, plan: CteNode) -> CteExec:
        saved = dict(self._cte_columns)
        try:
            definitions: list[tuple[str, list[str], PhysicalNode]] = []
            for definition in plan.definitions:
                lowered = self.lower(definition.plan)
                names = definition.columns or self._output_names(definition.plan)
                self._cte_columns[definition.name.lower()] = names
                definitions.append((definition.name, list(definition.columns), lowered))
            return CteExec(definitions=definitions, input=self.lower(plan.input))
        finally:
            self._cte_columns = saved

    # -- join-key side analysis ---------------------------------------- #

    def _lower_join(self, plan: JoinNode) -> JoinExec:
        left = self.lower(plan.left)
        right = self.lower(plan.right)
        left_keys: list[SqlNode] = []
        right_keys: list[SqlNode] = []
        residual: SqlNode | None = None
        if plan.condition is not None and plan.join_type in ("INNER", "LEFT", "RIGHT", "FULL"):
            left_map = self._side_columns(plan.left)
            right_map = self._side_columns(plan.right)
            if left_map is not None and right_map is not None:
                left_keys, right_keys, residual = self._classify_condition(
                    plan.condition, left_map, right_map
                )
        return JoinExec(
            left=left,
            right=right,
            join_type=plan.join_type,
            condition=plan.condition,
            using=list(plan.using),
            left_keys=left_keys,
            right_keys=right_keys,
            residual=residual,
        )

    def _side_columns(self, plan: PlanNode) -> dict[str, list[str]] | None:
        """binding -> column names for one join input, or None when unknown.

        Delegates to the optimizer's shared scope analysis so the lowerer and
        the rewrite rules can never disagree about name resolution.
        """
        cte_types = {
            name: ({column: None for column in columns} if columns is not None else None)
            for name, columns in self._cte_columns.items()
        }
        scope = plan_binding_infos(plan, self._catalog, cte_types)
        if scope is None:
            return None
        return {binding: list(info.columns) for binding, info in scope.items()}

    def _output_names(self, plan: PlanNode) -> list[str] | None:
        """Best-effort output column names of a planned query subtree."""
        return plan_output_names(plan)

    def _classify_condition(
        self,
        condition: SqlNode,
        left_map: dict[str, list[str]],
        right_map: dict[str, list[str]],
    ) -> tuple[list[SqlNode], list[SqlNode], SqlNode | None]:
        """Split an ON condition into hash-join key pairs plus a residual."""
        left_keys: list[SqlNode] = []
        right_keys: list[SqlNode] = []
        residual: list[SqlNode] = []
        from repro.difftree.canonical import split_conjuncts

        for conjunct in split_conjuncts(condition):
            classified = False
            if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                side_a = self._side_of(conjunct.left, left_map, right_map)
                side_b = self._side_of(conjunct.right, left_map, right_map)
                if side_a == "L" and side_b == "R":
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                    classified = True
                elif side_a == "R" and side_b == "L":
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
                    classified = True
            if not classified:
                residual.append(conjunct)
        from repro.difftree.canonical import join_conjuncts

        return left_keys, right_keys, join_conjuncts(residual)

    def _side_of(
        self,
        expr: SqlNode,
        left_map: dict[str, list[str]],
        right_map: dict[str, list[str]],
    ) -> str | None:
        refs: list[ColumnRef] = []
        for node in expr.walk():
            if isinstance(node, Select):
                return None
            if isinstance(node, ColumnRef):
                refs.append(node)
        if not refs:
            return None
        side: str | None = None
        for ref in refs:
            in_left = _ref_in_map(ref, left_map)
            in_right = _ref_in_map(ref, right_map)
            if in_left == in_right:  # both (ambiguous) or neither (outer/unknown)
                return None
            ref_side = "L" if in_left else "R"
            if side is None:
                side = ref_side
            elif side != ref_side:
                return None
        return side


def _ref_in_map(ref: ColumnRef, columns: dict[str, list[str]]) -> bool:
    if ref.table:
        return ref.table in columns and ref.name in columns[ref.table]
    return any(ref.name in names for names in columns.values())


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #


#: FIFO capacity of the catalog's shared compiled-plan cache.  Interface
#: sessions bake literal values into instantiated SQL, so distinct query
#: texts grow without bound over a long session; plans are cheap to
#: recompile, so a simple bounded cache suffices.
PLAN_CACHE_CAPACITY = 512


class Executor:
    """Compiles SELECT statements to physical plans and runs them.

    Args:
        catalog: the catalog queries run against.
        parameters: values for named query parameters.
        plan_cache: optional shared compiled-plan cache (owned by the
            catalog), keyed by (SQL text, visible CTE signature, optimize).
        optimize: run the logical optimizer between planning and lowering.
            ``False`` is the debugging/differential-testing escape hatch: the
            logical plan is lowered verbatim.
        deadline: absolute ``time.monotonic()`` instant past which execution
            is cooperatively cancelled with :class:`QueryTimeoutError`
            (``None`` — the default — disables all deadline checks).
    """

    def __init__(
        self,
        catalog,
        parameters: dict[str, Any] | None = None,
        plan_cache: dict | None = None,
        optimize: bool = True,
        deadline: float | None = None,
    ) -> None:
        self._catalog = catalog
        self._parameters = parameters or {}
        self._shared_plan_cache = plan_cache
        self._optimize = optimize
        self._deadline = deadline
        # Per-execution memos keyed by AST node identity; the node reference
        # is retained so id() reuse cannot alias entries.
        self._plan_memo: dict[int, tuple[SqlNode, PhysicalNode]] = {}
        self._sql_memo: dict[int, tuple[SqlNode, str]] = {}
        self._correlated_memo: dict[int, tuple[SqlNode, bool]] = {}

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def execute(self, node: SqlNode) -> QueryResult:
        """Execute a SELECT or set operation and return its materialized result."""
        if not isinstance(node, (Select, SetOperation)):
            raise ExecutionError(f"Cannot execute node of type {type(node).__name__}")
        if _fault_hook is not None:
            _fault_hook()
        plan = self.compile(node)
        ctx = ExecutionContext(
            executor=self,
            catalog=self._catalog,
            ctes={},
            outer=None,
            parameters=self._parameters,
            deadline=self._deadline,
        )
        batch = plan.execute(ctx)
        columns = [name for _, name in batch.slots]
        schema = self._result_schema(_leftmost_select(node), columns, batch.columns)
        # Column hand-off: the result keeps the vectors and derives the row
        # view lazily.  The copy detaches the result from any vector that
        # aliases live table storage (pass-through scans), so later table
        # mutations cannot bleed into a held result.
        return QueryResult(
            columns=columns,
            schema=schema,
            column_data=[list(column) for column in batch.columns],
            row_count=batch.length,
        )

    def compile(self, node: SqlNode) -> PhysicalNode:
        """Compile a query AST to its physical plan (no execution)."""
        return self.plan_for(node, cte_tables={})

    def plan_for(self, node: SqlNode, cte_tables: dict[str, Table]) -> PhysicalNode:
        """The compiled physical plan for ``node`` under the given CTE scope."""
        memo = self._plan_memo.get(id(node))
        if memo is not None and memo[0] is node:
            return memo[1]
        cte_columns: dict[str, list[str] | None] = {
            name: list(table.column_names) for name, table in cte_tables.items()
        }
        plan = self._compile(node, cte_columns)
        self._plan_memo[id(node)] = (node, plan)
        return plan

    def _compile(
        self, node: SqlNode, cte_columns: dict[str, list[str] | None]
    ) -> PhysicalNode:
        shared = self._shared_plan_cache
        key = None
        if shared is not None:
            signature = tuple(
                sorted(
                    (name, tuple(columns) if columns is not None else None)
                    for name, columns in cte_columns.items()
                )
            )
            # The optimize flag is part of the key: an optimized plan must
            # never be served to an executor that asked for the verbatim
            # lowering (and vice versa).  Optimized plans additionally bake
            # in *data-dependent* facts (totality proofs from
            # Table.value_type, join-order estimates), so their entries are
            # keyed by the catalog data version: row mutations bump it
            # without clearing the plan cache, and a stale rewritten plan
            # could otherwise crash or mis-order where a fresh compile would
            # not.  Verbatim lowering depends only on column names, so its
            # entries are keyed by the schema version alone (appends reuse
            # them); clear-on-schema-bump is not enough on its own now that
            # pinned snapshots can outlive the clear and repopulate the
            # shared cache with old-schema plans.
            if self._optimize and hasattr(self._catalog, "data_version"):
                version = self._catalog.data_version()
            elif not self._optimize and hasattr(self._catalog, "schema_version"):
                version = ("schema", self._catalog.schema_version())
            else:
                version = None
            key = (self._sql_key(node), signature, self._optimize, version)
            cached = shared.get(key)
            if cached is not None:
                return cached
        logical = Planner().plan(node)
        if self._optimize:
            logical, _ = optimize_plan(logical, self._catalog, cte_columns)
        physical = lower_plan(logical, self._catalog, cte_columns)
        if shared is not None and key is not None:
            shared[key] = physical
            # Concurrent executors trim the shared cache cooperatively; a key
            # another thread already evicted (or a clear racing the iterator)
            # must not abort this thread's store.
            while len(shared) > PLAN_CACHE_CAPACITY:
                try:
                    shared.pop(next(iter(shared)), None)
                except (StopIteration, RuntimeError):
                    break
        return physical

    # ------------------------------------------------------------------ #
    # Subquery execution (invoked by the vectorized evaluator)
    # ------------------------------------------------------------------ #

    def run_subquery(
        self, ctx: ExecutionContext, query: Select, row_env: Environment
    ) -> PlanResult:
        key = self._sql_key(query)
        cached = ctx.subquery_cache.get(key)
        if cached is not None:
            return cached
        # Correlated subqueries run once per outer row — the checkpoint here
        # is what bounds per-row execution loops that never re-enter an
        # operator's own checkpoint.
        ctx.checkpoint()
        cacheable = not self._is_correlated(query)
        probe = CorrelationProbe(row_env)
        child = ExecutionContext(
            executor=self,
            catalog=self._catalog,
            ctes=ctx.ctes,
            outer=probe,
            parameters=self._parameters,
            deadline=ctx.deadline,
        )
        plan = self.plan_for(query, ctx.ctes)
        batch = plan.execute(child)
        result = PlanResult(
            columns=[name for _, name in batch.slots], rows=batch.rows()
        )
        if cacheable and not probe.correlated:
            ctx.subquery_cache[key] = result
        return result

    def _is_correlated(self, query: Select) -> bool:
        memo = self._correlated_memo.get(id(query))
        if memo is not None and memo[0] is query:
            return memo[1]

        def table_columns(name: str) -> list[str] | None:
            if self._catalog.has_table(name):
                return self._catalog.table(name).column_names
            return None

        correlated = references_outer_names(query, table_columns)
        self._correlated_memo[id(query)] = (query, correlated)
        return correlated

    def _sql_key(self, node: SqlNode) -> str:
        memo = self._sql_memo.get(id(node))
        if memo is not None and memo[0] is node:
            return memo[1]
        text = to_sql(node)
        self._sql_memo[id(node)] = (node, text)
        return text

    # ------------------------------------------------------------------ #
    # Output schema
    # ------------------------------------------------------------------ #

    def _result_schema(
        self, query: Select, columns: list[str], column_vectors: list[list[Any]]
    ) -> ResultSchema:
        return infer_result_schema(self._catalog, query, columns, column_vectors)


def infer_result_schema(
    catalog, query: Select, columns: list[str], column_vectors: list[list[Any]]
) -> ResultSchema:
    """The output schema for one query's materialized columns.

    Prefers the analyzer's static inference (renamed to the actual output
    column names); falls back to value-based type/role inference from the
    materialized vectors.  Shared by the executor and the incremental-
    maintenance fold path (``engine/ivm.py``) so a folded result carries
    exactly the schema a cold recompute would.
    """
    try:
        analyzer = Analyzer(catalog.schemas())
        inferred = analyzer.result_schema(query)
        if len(inferred.columns) == len(columns):
            renamed = tuple(
                ColumnSchema(name=name, data_type=column.data_type, role=column.role)
                for name, column in zip(columns, inferred.columns)
            )
            return ResultSchema(columns=renamed)
    except Exception:  # noqa: BLE001 - schema inference is best effort
        pass
    # Fall back to inferring types from the materialized column vectors.
    schemas = []
    for index, name in enumerate(columns):
        values = column_vectors[index] if index < len(column_vectors) else []
        data_type = DataType.NULL
        for value in values:
            data_type = DataType.unify(data_type, DataType.of_value(value))
        non_null = [value for value in values if value is not None]
        role = AttributeRole.from_data_type(data_type, len(set(map(hashable, non_null))))
        schemas.append(ColumnSchema(name=name, data_type=data_type, role=role))
    return ResultSchema(columns=tuple(schemas))


def _leftmost_select(node: SqlNode) -> Select:
    while isinstance(node, SetOperation):
        node = node.left
    return node  # type: ignore[return-value]
