"""Rule-based logical-plan optimizer.

Runs between ``Planner.plan()`` and ``lower_plan()`` and rewrites the logical
plan into an equivalent, cheaper one.  Rules, in application order:

1. **constant_folding** — evaluates constant subexpressions of WHERE / HAVING
   / ON predicates through the :class:`VectorEvaluator` (so folding and
   execution can never disagree), absorbs ``TRUE``/``FALSE`` operands of
   AND/OR chains, and drops filters whose predicate folded to ``TRUE``.
2. **predicate_pushdown** — splits AND chains into conjuncts and pushes each
   conjunct to its deepest legal scope: below inner joins onto the side it
   references, into the preserved side of outer joins, from WHERE into an
   INNER/CROSS join condition when it references both sides (turning comma
   joins into equi-joins the lowerer can hash), from HAVING below the
   aggregation when it only references group keys, and through derived-table
   projections by substituting the projected expressions.
3. **join_reorder** — greedily reorders maximal INNER/CROSS join regions of
   three or more inputs, driven by the memoized ``Table`` statistics
   (row counts, per-column distinct counts, value ranges): start from the
   smallest input, then repeatedly attach the input with the smallest
   estimated join cardinality.
4. **access_path** — replaces a ``Filter`` directly over a base-table scan
   with an :class:`IndexScanNode` when one of its conjuncts (column-vs-literal
   equality, range, BETWEEN or IN) can be answered by a secondary index on
   the table and the distinct/range statistics estimate the conjunct
   selective enough to beat the fused sequential scan; remaining conjuncts
   stay in a residual filter above.  The decision is recorded in the trace
   (EXPLAIN-visible).  ``optimize=False`` bypasses this (and every) rule, and
   a catalog without indexes never takes the path — both serve as escape
   hatches.
5. **projection_pruning** — narrows every base-table scan (including index
   scans) to the columns the rest of the plan (including correlated
   subqueries) references, so joins and filters never gather dead columns.

Legality is enforced by two analyses shared with the lowerer:

* **side classification** (:func:`plan_binding_infos`) resolves which join
  input binds each column reference — mirroring run-time name resolution;
* **totality** (:func:`expression_type_and_totality`) proves that a predicate
  cannot raise at run time (type-compatible comparisons, error-free
  functions, no subqueries).  Only *total* conjuncts may move: a non-total
  conjunct could rely on sibling conjuncts or row-wise short-circuiting
  (AND/OR and CASE fallback paths) to hide rows that would error, so it is
  never separated from its original scope.

Every rewrite is recorded in an :class:`OptimizerTrace`, which
``Catalog.explain(physical=True)`` renders alongside the pre- and
post-rewrite plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.difftree.canonical import join_conjuncts, split_conjuncts
from repro.engine.aggregates import is_aggregate_function
from repro.engine.expressions import Batch, VectorEvaluator
from repro.engine.functions import is_scalar_function
from repro.engine.plan_nodes import (
    AggregateNode,
    CteDefinition,
    CteNode,
    DerivedScanNode,
    DistinctNode,
    FilterNode,
    IndexAccessPath,
    IndexScanNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
    WindowNode,
    dedupe_names,
    window_sort_key,
)
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Parameter,
    Select,
    SqlNode,
    Star,
    UnaryOp,
    WindowCall,
)
from repro.sql.printer import to_sql
from repro.sql.schema import DataType
from repro.sql.visitor import transform

#: Comparison groups: values within one group order against each other
#: without raising; values across groups do not.
_NUMERIC_TYPES = frozenset({DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN})
_TEXTUAL_TYPES = frozenset({DataType.TEXT, DataType.DATE})

#: Default cardinality assumed for inputs without statistics (CTE scans,
#: unknown tables) during join reordering.
_DEFAULT_ROWS = 1000.0

#: Tables below this row count never take an index path: a fused sequential
#: scan over a handful of rows beats any probe-plus-gather.
_INDEX_SCAN_MIN_ROWS = 32

#: Estimated selectivity above which an index path is refused: gathering
#: most of the table row-by-row loses to the vectorized scan-and-compress.
_INDEX_SCAN_MAX_SELECTIVITY = 0.5


# --------------------------------------------------------------------------- #
# Trace
# --------------------------------------------------------------------------- #


@dataclass
class OptimizerTrace:
    """Ordered record of every rule application during one optimization."""

    events: list[tuple[str, str]] = field(default_factory=list)
    #: Access-path decisions as data (mirrors the ``access_path`` events):
    #: index choices, refusals and window sort elisions, for consumers that
    #: want decisions instead of prose (see ``ExplainReport.access_paths``).
    access_decisions: list[dict[str, Any]] = field(default_factory=list)

    def record(self, rule: str, detail: str) -> None:
        self.events.append((rule, detail))

    def record_access(self, **decision: Any) -> None:
        self.access_decisions.append(decision)

    def lines(self) -> list[str]:
        return [f"{rule}: {detail}" for rule, detail in self.events]

    def rules_applied(self) -> list[str]:
        """Distinct rule names in first-application order."""
        seen: list[str] = []
        for rule, _ in self.events:
            if rule not in seen:
                seen.append(rule)
        return seen

    def __bool__(self) -> bool:
        return bool(self.events)


# --------------------------------------------------------------------------- #
# Scope analysis (shared with the lowerer's join-key side analysis)
# --------------------------------------------------------------------------- #


@dataclass
class BindingInfo:
    """Columns (and, when known, value types) of one FROM-clause binding."""

    columns: list[str]
    table: Any | None = None  # base Table providing memoized statistics
    types: dict[str, DataType | None] | None = None  # derived-table outputs

    def column_type(self, name: str) -> DataType | None:
        if self.table is not None:
            try:
                return self.table.value_type(name)
            except Exception:  # noqa: BLE001 - stats are best effort
                return None
        if self.types is not None:
            return self.types.get(name)
        return None


def plan_output_names(plan: PlanNode) -> list[str] | None:
    """Best-effort output column names of a planned query subtree."""
    node = plan
    while isinstance(node, (LimitNode, SortNode, DistinctNode, CteNode)):
        node = node.input
    if isinstance(node, SetOpNode):
        return plan_output_names(node.left)
    if not isinstance(node, ProjectNode):
        return None
    names: list[str] = []
    for item in node.items:
        if isinstance(item.expr, Star):
            return None
        names.append(item.output_name())
    return dedupe_names(names)


def plan_binding_infos(
    plan: PlanNode,
    catalog,
    cte_types: dict[str, dict[str, DataType | None] | None],
) -> dict[str, BindingInfo] | None:
    """binding name -> :class:`BindingInfo` for a FROM subtree, or None.

    ``None`` means name resolution for the subtree cannot be predicted
    statically (unknown table, duplicated binding, SELECT * derived table);
    callers must then refuse to classify or move expressions.
    """
    if isinstance(plan, IndexScanNode):
        # Index scans only ever target catalog base tables (the access-path
        # rule refuses CTE and derived bindings), so resolution is direct.
        if catalog is not None and catalog.has_table(plan.table_name):
            table = catalog.table(plan.table_name)
            columns = (
                list(plan.columns) if plan.columns is not None else list(table.column_names)
            )
            return {plan.binding_name: BindingInfo(columns=columns, table=table)}
        return None
    if isinstance(plan, ScanNode):
        if plan.table_name == "<dual>":
            return {}
        cte = cte_types.get(plan.table_name.lower(), "miss")
        if cte != "miss":
            if cte is None:
                return None
            columns = list(cte)
            if plan.columns is not None:
                columns = [name for name in columns if name in plan.columns]
            return {plan.binding_name: BindingInfo(columns=columns, types=cte)}
        if catalog is not None and catalog.has_table(plan.table_name):
            table = catalog.table(plan.table_name)
            columns = (
                list(plan.columns) if plan.columns is not None else list(table.column_names)
            )
            return {plan.binding_name: BindingInfo(columns=columns, table=table)}
        return None
    if isinstance(plan, DerivedScanNode):
        names = plan_output_names(plan.input)
        if names is None:
            return None
        types = plan_output_types(plan.input, catalog, cte_types)
        return {plan.alias: BindingInfo(columns=names, types=types)}
    if isinstance(plan, FilterNode):
        return plan_binding_infos(plan.input, catalog, cte_types)
    if isinstance(plan, JoinNode):
        left = plan_binding_infos(plan.left, catalog, cte_types)
        right = plan_binding_infos(plan.right, catalog, cte_types)
        if left is None or right is None:
            return None
        if set(left) & set(right):
            return None
        merged = dict(left)
        merged.update(right)
        return merged
    return None


def plan_output_types(
    plan: PlanNode,
    catalog,
    cte_types: dict[str, dict[str, DataType | None] | None],
) -> dict[str, DataType | None] | None:
    """Output column name -> value type for a planned query subtree."""
    node = plan
    scoped_ctes = dict(cte_types)
    while True:
        if isinstance(node, (LimitNode, SortNode, DistinctNode)):
            node = node.input
            continue
        if isinstance(node, CteNode):
            for definition in node.definitions:
                produced = plan_output_types(definition.plan, catalog, scoped_ctes)
                if produced is not None and definition.columns:
                    produced = dict(zip(definition.columns, produced.values()))
                scoped_ctes[definition.name.lower()] = produced
            node = node.input
            continue
        break
    if isinstance(node, SetOpNode):
        return plan_output_types(node.left, catalog, scoped_ctes)
    if not isinstance(node, ProjectNode):
        return None
    below = node.input
    while isinstance(below, (FilterNode, WindowNode)):
        below = below.input
    if isinstance(below, AggregateNode):
        below = below.input
        while isinstance(below, FilterNode):
            below = below.input
    scope = plan_binding_infos(below, catalog, scoped_ctes)
    names: list[str] = []
    types: list[DataType | None] = []
    for item in node.items:
        if isinstance(item.expr, Star):
            return None
        names.append(item.output_name())
        types.append(expression_type_and_totality(item.expr, scope)[0])
    return dict(zip(dedupe_names(names), types))


def _resolve_ref_type(
    ref: ColumnRef, scope: dict[str, BindingInfo] | None
) -> DataType | None:
    if scope is None:
        return None
    if ref.table:
        info = scope.get(ref.table)
        if info is not None and ref.name in info.columns:
            return info.column_type(ref.name)
        return None
    hits = [info for info in scope.values() if ref.name in info.columns]
    if len(hits) == 1:
        return hits[0].column_type(ref.name)
    return None


# --------------------------------------------------------------------------- #
# Totality analysis: can this expression raise at run time?
# --------------------------------------------------------------------------- #


def _comparable(a: DataType | None, b: DataType | None) -> bool:
    """True when ordering values of the two types cannot raise."""
    if a is None or b is None:
        return False
    if a is DataType.NULL or b is DataType.NULL:
        return True
    return (a in _NUMERIC_TYPES and b in _NUMERIC_TYPES) or (
        a in _TEXTUAL_TYPES and b in _TEXTUAL_TYPES
    )


def _numeric(t: DataType | None) -> bool:
    return t is not None and (t in _NUMERIC_TYPES or t is DataType.NULL)


def _unify_types(a: DataType | None, b: DataType | None) -> DataType | None:
    """Comparison-group-safe least upper bound (unlike ``DataType.unify``,
    which maps cross-group mixes such as BOOLEAN+INTEGER to TEXT — lying to
    the totality analysis).  Cross-group mixes yield None (unknown), which
    can never prove a comparison total."""
    if a is None or b is None:
        return None
    if a is DataType.NULL:
        return b
    if b is DataType.NULL:
        return a
    if a is b:
        return a
    if a in _NUMERIC_TYPES and b in _NUMERIC_TYPES:
        return DataType.FLOAT if DataType.FLOAT in (a, b) else DataType.INTEGER
    if a in _TEXTUAL_TYPES and b in _TEXTUAL_TYPES:
        return DataType.TEXT
    return None


#: Scalar functions that are safe for arguments of any type (they coerce via
#: ``str()`` or merely select among their arguments).
_TEXT_SAFE_FUNCTIONS = frozenset(
    {"upper", "lower", "trim", "ltrim", "rtrim", "concat", "replace"}
)
#: Scalar functions safe when every argument is numeric.
_NUMERIC_SAFE_FUNCTIONS = frozenset({"abs", "floor", "ceil", "ceiling", "sign"})


def expression_type_and_totality(
    expr: SqlNode, scope: dict[str, BindingInfo] | None
) -> tuple[DataType | None, bool]:
    """(value type, total) of an expression under a FROM scope.

    *Total* means evaluation can never raise for any input row: types are
    compatible where the engine would compare or compute, no subqueries, no
    functions with partial domains.  Only total expressions may be moved to a
    different scope by the optimizer — a non-total one might currently be
    shielded by sibling conjuncts through the engine's row-wise AND/OR/CASE
    short-circuit fallback, and moving it would surface errors (or hide
    them).  Type ``None`` means unknown.
    """
    if isinstance(expr, Literal):
        return DataType.of_value(expr.value), True
    if isinstance(expr, ColumnRef):
        return _resolve_ref_type(expr, scope), True
    if isinstance(expr, Parameter):
        return None, True
    if isinstance(expr, UnaryOp):
        operand_type, operand_total = expression_type_and_totality(expr.operand, scope)
        if expr.op == "NOT":
            return DataType.BOOLEAN, operand_total
        if _numeric(operand_type):
            return operand_type, operand_total
        return None, False
    if isinstance(expr, BinaryOp):
        left_type, left_total = expression_type_and_totality(expr.left, scope)
        right_type, right_total = expression_type_and_totality(expr.right, scope)
        both = left_total and right_total
        op = expr.op
        if op in ("AND", "OR"):
            return DataType.BOOLEAN, both
        if op in ("=", "<>"):
            # Python ``==`` never raises, so SQL (in)equality is always total.
            return DataType.BOOLEAN, both
        if op in ("<", "<=", ">", ">="):
            return DataType.BOOLEAN, both and _comparable(left_type, right_type)
        if op == "LIKE":
            return DataType.BOOLEAN, both
        if op == "||":
            return DataType.TEXT, both
        if op in ("+", "-", "*"):
            if _numeric(left_type) and _numeric(right_type):
                return _unify_types(left_type, right_type), both
            return None, False
        if op in ("/", "%"):
            if _numeric(left_type) and _numeric(right_type):
                return DataType.FLOAT, both
            return None, False
        return None, False
    if isinstance(expr, BetweenOp):
        value_type, value_total = expression_type_and_totality(expr.expr, scope)
        low_type, low_total = expression_type_and_totality(expr.low, scope)
        high_type, high_total = expression_type_and_totality(expr.high, scope)
        total = (
            value_total
            and low_total
            and high_total
            and _comparable(value_type, low_type)
            and _comparable(value_type, high_type)
        )
        return DataType.BOOLEAN, total
    if isinstance(expr, InList):
        parts = [expression_type_and_totality(expr.expr, scope)] + [
            expression_type_and_totality(item, scope) for item in expr.items
        ]
        # Membership uses ``==`` only, which never raises.
        return DataType.BOOLEAN, all(total for _, total in parts)
    if isinstance(expr, IsNull):
        return DataType.BOOLEAN, expression_type_and_totality(expr.expr, scope)[1]
    if isinstance(expr, Case):
        total = True
        result_type: DataType | None = None
        known = True
        for arm in expr.whens:
            total = total and expression_type_and_totality(arm.condition, scope)[1]
            arm_type, arm_total = expression_type_and_totality(arm.result, scope)
            total = total and arm_total
            if arm_type is None:
                known = False
            elif result_type is None:
                result_type = arm_type
            else:
                result_type = _unify_types(result_type, arm_type)
                known = known and result_type is not None
        if expr.else_result is not None:
            else_type, else_total = expression_type_and_totality(expr.else_result, scope)
            total = total and else_total
            if else_type is None:
                known = False
            elif result_type is not None:
                result_type = _unify_types(result_type, else_type)
                known = known and result_type is not None
            else:
                result_type = else_type
        return (result_type if known else None), total
    if isinstance(expr, Cast):
        operand_type, operand_total = expression_type_and_totality(expr.expr, scope)
        target = expr.target_type
        if target in ("text", "varchar", "char", "string"):
            return DataType.TEXT, operand_total
        if target in ("boolean", "bool"):
            return DataType.BOOLEAN, operand_total
        if target == "date":
            return DataType.DATE, operand_total
        if target in ("int", "integer", "bigint"):
            return DataType.INTEGER, operand_total and _numeric(operand_type)
        if target in ("float", "real", "double"):
            return DataType.FLOAT, operand_total and _numeric(operand_type)
        return None, False
    if isinstance(expr, FunctionCall):
        return _function_type_and_totality(expr, scope)
    # Subqueries (ScalarSubquery / Exists / InSubquery), Star and anything
    # unrecognized are never movable.
    return None, False


def _function_type_and_totality(
    call: FunctionCall, scope: dict[str, BindingInfo] | None
) -> tuple[DataType | None, bool]:
    name = call.lower_name
    args = [expression_type_and_totality(arg, scope) for arg in call.args]
    if is_aggregate_function(name) and not is_scalar_function(name):
        if name == "count":
            return DataType.INTEGER, False
        if name in ("min", "max") and args:
            return args[0][0], False
        if name == "sum" and args and args[0][0] is DataType.INTEGER:
            return DataType.INTEGER, False
        return DataType.FLOAT, False
    all_total = all(total for _, total in args)
    if name in _TEXT_SAFE_FUNCTIONS:
        return DataType.TEXT, all_total
    if name == "length":
        return DataType.INTEGER, all_total
    if name in ("coalesce", "ifnull"):
        result: DataType | None = DataType.NULL
        for arg_type, _ in args:
            result = _unify_types(result, arg_type)
            if result is None:
                break
        return result, all_total
    if name == "nullif" and len(args) == 2:
        return args[0][0], all_total  # equality check only, never raises
    if name in _NUMERIC_SAFE_FUNCTIONS:
        total = all_total and all(_numeric(arg_type) for arg_type, _ in args)
        if name in ("floor", "ceil", "ceiling", "sign"):
            return DataType.INTEGER, total
        return (args[0][0] if args else None), total
    if name == "round":
        total = (
            all_total
            and bool(args)
            and _numeric(args[0][0])
            and (len(args) < 2 or args[1][0] in (DataType.INTEGER, DataType.NULL))
        )
        return DataType.FLOAT, total
    if name in ("year", "month", "day"):
        total = all_total and bool(args) and args[0][0] is DataType.DATE
        return DataType.INTEGER, total
    if name == "date":
        return DataType.DATE, all_total
    if name == "date_trunc":
        total = (
            all_total
            and len(args) == 2
            and isinstance(call.args[0], Literal)
            and str(call.args[0].value).lower() in ("year", "month", "day")
            and args[1][0] is DataType.DATE
        )
        return DataType.DATE, total
    if name in ("substr", "substring", "left", "right"):
        total = all_total and all(
            arg_type in (DataType.INTEGER, DataType.NULL) for arg_type, _ in args[1:]
        )
        return DataType.TEXT, total
    return None, False


def _is_constant(expr: SqlNode) -> bool:
    """True when the expression references no rows, parameters or subqueries.

    All registered scalar functions are deterministic, so such an expression
    always evaluates to the same value and may be folded to a literal.
    """
    for node in expr.walk():
        if isinstance(node, (ColumnRef, Parameter, Star, Select)):
            return False
        if isinstance(node, FunctionCall) and not is_scalar_function(node.name):
            return False
    return True


# --------------------------------------------------------------------------- #
# Incremental-maintenance shape analysis
# --------------------------------------------------------------------------- #


@dataclass
class MaintainableShape:
    """The pieces of a logical plan the delta-fold path re-executes.

    A *maintainable* query (see :func:`maintainable_shape`) reads one base
    table through at most a WHERE filter and an optional GROUP BY aggregation;
    the folder in ``engine/ivm.py`` replays exactly these pieces over each
    appended row range instead of recomputing the full query.
    """

    kind: str  # "splice" (scan/filter/project) or "aggregate" (+ GROUP BY)
    table_name: str  # base table as written in the scan (catalog lookup key)
    binding: str  # FROM-clause binding name the batch slots carry
    items: list  # SELECT-list items (SelectItem)
    predicate: SqlNode | None  # WHERE predicate, or None
    group_by: list  # GROUP BY expressions (empty for splice / global agg)
    aggregates: list  # aggregate FunctionCall ASTs (empty for splice)

    def describe(self) -> str:
        return f"{self.kind} over {self.table_name}"


def maintainable_shape(plan: PlanNode) -> tuple[MaintainableShape | None, str]:
    """Classify a *pre-rewrite* logical plan as IVM-maintainable or not.

    Returns ``(shape, detail)`` — ``shape`` is None with a human-readable
    refusal reason when the plan cannot be maintained incrementally.  v1
    accepts exactly two shapes over a single base-table scan:

    * ``Project(Filter[where]?(Scan))`` — appended rows are filtered,
      projected and spliced onto the cached result;
    * ``Project(Aggregate(Filter[where]?(Scan)))`` — appended rows fold into
      per-group accumulator state.

    Everything else — joins, windows, HAVING, DISTINCT, ORDER BY, LIMIT,
    set operations, CTEs, derived tables, subqueries, parameters — falls back
    to full recompute-on-miss.  The analysis runs on the planner's output
    (before optimization), so the shape is a pure function of the query text.
    """
    node = plan
    if not isinstance(node, ProjectNode):
        return None, f"{type(node).__name__} above the projection"
    items = node.items
    below = node.input

    aggregate: AggregateNode | None = None
    if isinstance(below, FilterNode) and below.phase == "having":
        return None, "HAVING filter"
    if isinstance(below, AggregateNode):
        aggregate = below
        below = below.input

    predicate: SqlNode | None = None
    if isinstance(below, FilterNode):
        if below.phase != "where":
            return None, f"{below.phase} filter below the projection"
        predicate = below.predicate
        below = below.input

    if not isinstance(below, ScanNode):
        return None, f"{type(below).__name__} source"
    if below.table_name == "<dual>":
        return None, "FROM-less query"

    expressions: list[SqlNode] = [item.expr for item in items]
    if predicate is not None:
        expressions.append(predicate)
    if aggregate is not None:
        expressions.extend(aggregate.group_by)
        expressions.extend(aggregate.aggregates)
    for expression in expressions:
        for descendant in expression.walk():
            if isinstance(descendant, Select):
                return None, "subquery expression"
            if isinstance(descendant, Parameter):
                return None, "parameter reference"
            if isinstance(descendant, WindowCall):
                return None, "window call"

    shape = MaintainableShape(
        kind="aggregate" if aggregate is not None else "splice",
        table_name=below.table_name,
        binding=below.binding_name,
        items=list(items),
        predicate=predicate,
        group_by=list(aggregate.group_by) if aggregate is not None else [],
        aggregates=list(aggregate.aggregates) if aggregate is not None else [],
    )
    return shape, shape.describe()


# --------------------------------------------------------------------------- #
# The optimizer
# --------------------------------------------------------------------------- #


def optimize_plan(
    plan: PlanNode,
    catalog,
    cte_columns: dict[str, list[str] | None] | None = None,
) -> tuple[PlanNode, OptimizerTrace]:
    """Rewrite a logical plan through the full rule pipeline.

    Args:
        plan: the planner's logical plan.  It is never mutated; the returned
            plan shares unchanged subtrees with it.
        catalog: the catalog supplying table statistics (duck-typed; may be
            None, which disables statistics-driven rules).
        cte_columns: lexically visible outer CTE names -> output columns (or
            None when unknown) — the same map the lowerer receives, so both
            stages agree on name resolution.
    """
    trace = OptimizerTrace()
    # Maintainability is a property of the pre-rewrite plan (the fold path
    # re-analyzes the same planner output), recorded first so EXPLAIN shows
    # the ivm decision alongside the rewrite trace.
    shape, detail = maintainable_shape(plan)
    if shape is not None:
        trace.record("ivm", f"maintainable ({detail})")
    else:
        trace.record("ivm", f"not maintainable ({detail})")
    cte_types: dict[str, dict[str, DataType | None] | None] = {}
    for name, columns in (cte_columns or {}).items():
        cte_types[name.lower()] = (
            {column: None for column in columns} if columns is not None else None
        )
    optimizer = _Optimizer(catalog, cte_types, trace)
    rewritten = optimizer.rewrite(plan)
    rewritten = optimizer.choose_access_paths(rewritten)
    rewritten = optimizer.prune(rewritten)
    return rewritten, trace


class _Optimizer:
    def __init__(
        self,
        catalog,
        cte_types: dict[str, dict[str, DataType | None] | None],
        trace: OptimizerTrace,
    ) -> None:
        self._catalog = catalog
        self._cte_types = dict(cte_types)
        self._outer_cte_names = set(cte_types)
        self._trace = trace
        self._fold_evaluator = VectorEvaluator(None)

    # ------------------------------------------------------------------ #
    # Plan-level rewriting (per SELECT scope)
    # ------------------------------------------------------------------ #

    def rewrite(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, CteNode):
            return self._rewrite_cte(plan)
        if isinstance(plan, SetOpNode):
            return SetOpNode(
                op=plan.op,
                left=self.rewrite(plan.left),
                right=self.rewrite(plan.right),
                all=plan.all,
            )
        if isinstance(plan, LimitNode):
            return LimitNode(
                input=self.rewrite(plan.input), limit=plan.limit, offset=plan.offset
            )
        if isinstance(plan, SortNode):
            return SortNode(input=self.rewrite(plan.input), order_by=list(plan.order_by))
        if isinstance(plan, DistinctNode):
            return DistinctNode(input=self.rewrite(plan.input))
        if isinstance(plan, ProjectNode):
            return self._rewrite_project(plan)
        if isinstance(plan, WindowNode):
            # Defensive: the planner always places a Project above a Window.
            return self._attach_window(
                plan, self._rewrite_project_input(plan.input, star_in_scope=True)
            )
        # A bare FROM subtree (defensive: the planner always adds a Project).
        return self._rewrite_from(plan, [], star_in_scope=True)

    def _rewrite_cte(self, plan: CteNode) -> CteNode:
        saved = dict(self._cte_types)
        try:
            definitions: list[CteDefinition] = []
            for definition in plan.definitions:
                rewritten = self.rewrite(definition.plan)
                produced = plan_output_types(rewritten, self._catalog, self._cte_types)
                if produced is not None and definition.columns:
                    produced = dict(zip(definition.columns, produced.values()))
                self._cte_types[definition.name.lower()] = produced
                definitions.append(
                    CteDefinition(
                        name=definition.name,
                        columns=list(definition.columns),
                        plan=rewritten,
                    )
                )
            return CteNode(definitions=definitions, input=self.rewrite(plan.input))
        finally:
            self._cte_types = saved

    def _rewrite_project(self, project: ProjectNode) -> PlanNode:
        star_in_scope = any(
            isinstance(item.expr, Star) and item.expr.table is None
            for item in project.items
        )
        below = project.input

        window: WindowNode | None = None
        if isinstance(below, WindowNode):
            window = below
            below = below.input

        inner = self._rewrite_project_input(below, star_in_scope)
        if window is not None:
            inner = self._attach_window(window, inner)
        return ProjectNode(input=inner, items=list(project.items))

    def _rewrite_project_input(self, below: PlanNode, star_in_scope: bool) -> PlanNode:
        """Rewrite everything between a Project (or Window) and the FROM tree."""
        having: FilterNode | None = None
        if (
            isinstance(below, FilterNode)
            and below.phase == "having"
            and isinstance(below.input, AggregateNode)
        ):
            having = below
            below = below.input

        if isinstance(below, AggregateNode):
            aggregate = below
            pool, source = self._collect_where_pool(aggregate.input)
            kept_having: SqlNode | None = None
            if having is not None:
                kept_having = self._push_having(having.predicate, aggregate, source, pool)
            new_from = self._rewrite_from(source, pool, star_in_scope)
            rebuilt: PlanNode = AggregateNode(
                input=new_from,
                group_by=list(aggregate.group_by),
                aggregates=list(aggregate.aggregates),
            )
            if kept_having is not None:
                rebuilt = FilterNode(input=rebuilt, predicate=kept_having, phase="having")
            return rebuilt

        if isinstance(below, FilterNode) and below.phase == "having":
            # HAVING without aggregation: keep it in place, rewrite below.
            folded = self._fold_predicate(below.predicate)
            inner = self.rewrite(below.input) if isinstance(
                below.input, (ProjectNode, SetOpNode, CteNode)
            ) else self._rewrite_from_below(below.input, star_in_scope)
            return FilterNode(input=inner, predicate=folded, phase="having")

        return self._rewrite_from_below(below, star_in_scope)

    def _rewrite_from_below(self, below: PlanNode, star_in_scope: bool) -> PlanNode:
        pool, source = self._collect_where_pool(below)
        return self._rewrite_from(source, pool, star_in_scope)

    def _collect_where_pool(self, node: PlanNode) -> tuple[list[SqlNode], PlanNode]:
        """Strip WHERE filters off a FROM subtree, folding their conjuncts."""
        pool: list[SqlNode] = []
        while isinstance(node, FilterNode) and node.phase == "where":
            predicate = self._fold_predicate(node.predicate)
            for conjunct in split_conjuncts(predicate):
                if isinstance(conjunct, Literal) and conjunct.value is not None and conjunct.value:
                    self._trace.record(
                        "constant_folding",
                        f"eliminated trivial predicate {to_sql(conjunct)}",
                    )
                    continue
                pool.append(conjunct)
            node = node.input
        return pool, node

    # ------------------------------------------------------------------ #
    # Rule: constant folding
    # ------------------------------------------------------------------ #

    def _fold_predicate(self, predicate: SqlNode) -> SqlNode:
        folded = self._fold_expr(predicate)
        if folded is not predicate and to_sql(folded) != to_sql(predicate):
            self._trace.record(
                "constant_folding",
                f"folded {to_sql(predicate)} -> {to_sql(folded)}",
            )
        return folded

    def _fold_expr(self, expr: SqlNode) -> SqlNode:
        if isinstance(expr, (Literal, ColumnRef, Parameter, Star, Select)):
            return expr
        children = expr.children()
        if children:
            new_children = [self._fold_expr(child) for child in children]
            if any(new is not old for new, old in zip(new_children, children)):
                expr = expr.with_children(new_children)
        if isinstance(expr, BinaryOp) and expr.op in ("AND", "OR"):
            simplified = self._absorb_boolean(expr)
            if simplified is not expr:
                return simplified
        if not isinstance(expr, Literal) and _is_constant(expr):
            try:
                value = self._fold_evaluator.eval(expr, Batch(slots=[], columns=[], length=1))[0]
            except Exception:  # noqa: BLE001 - leave expressions that error
                return expr
            if value is None or isinstance(value, (bool, int, float, str)):
                return Literal(value=value)
        return expr

    @staticmethod
    def _absorb_boolean(expr: BinaryOp) -> SqlNode:
        """Exact TRUE/FALSE absorption for AND/OR (NULL operands untouched)."""
        for literal, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if not isinstance(literal, Literal) or literal.value is None:
                continue
            truthy = bool(literal.value)
            if expr.op == "AND":
                return other if truthy else Literal(value=False)
            return Literal(value=True) if truthy else other
        return expr

    # ------------------------------------------------------------------ #
    # Rule: predicate pushdown
    # ------------------------------------------------------------------ #

    def _rewrite_from(
        self, tree: PlanNode, pool: list[SqlNode], star_in_scope: bool
    ) -> PlanNode:
        tree = self._push_into(tree, pool)
        if not star_in_scope:
            tree = self._reorder_joins(tree)
        return tree

    def _push_into(self, plan: PlanNode, conjuncts: list[SqlNode]) -> PlanNode:
        if isinstance(plan, FilterNode):
            merged = conjuncts + split_conjuncts(self._fold_predicate(plan.predicate))
            return self._push_into(plan.input, merged)
        if isinstance(plan, JoinNode):
            return self._push_join(plan, conjuncts)
        if isinstance(plan, DerivedScanNode):
            rewritten = DerivedScanNode(alias=plan.alias, input=self.rewrite(plan.input))
            remaining = conjuncts
            if conjuncts:
                rewritten, remaining = self._push_into_derived(rewritten, conjuncts)
            return self._wrap_filter(rewritten, remaining)
        if isinstance(plan, ScanNode):
            return self._wrap_filter(plan, conjuncts)
        if isinstance(plan, WindowNode):
            # A window boundary (reached when conjuncts are pushed through a
            # derived table whose scope computes windows).  Only conjuncts
            # over the partition keys of *every* window may cross: they keep
            # or drop whole partitions, so surviving partitions' window
            # values are untouched.  Everything else filters above.
            pushable, kept = self._split_window_conjuncts(plan, conjuncts)
            below = plan.input
            if pushable:
                below = self._push_into(below, pushable)
            rebuilt = WindowNode(
                input=below,
                windows=list(plan.windows),
                index_orders=dict(plan.index_orders),
            )
            return self._wrap_filter(rebuilt, kept)
        return self._wrap_filter(self.rewrite(plan), conjuncts)

    @staticmethod
    def _wrap_filter(plan: PlanNode, conjuncts: list[SqlNode]) -> PlanNode:
        predicate = join_conjuncts(conjuncts)
        if predicate is None:
            return plan
        return FilterNode(input=plan, predicate=predicate, phase="where")

    # -- window boundaries ----------------------------------------------- #

    def _split_window_conjuncts(
        self, window: WindowNode, conjuncts: list[SqlNode]
    ) -> tuple[list[SqlNode], list[SqlNode]]:
        """(below-window, above-window) split of conjuncts at a window boundary.

        A conjunct may cross below the window only when every column it
        references is a bare-ColumnRef partition key of *every* window the
        node computes (so it is constant within each partition and removes
        whole partitions) and it is total below the window.  Every decision
        is traced so EXPLAIN shows why pushdown stopped at the boundary.
        """
        if not conjuncts:
            return [], []
        below = window.input
        # Only FROM-like inputs accept pushed conjuncts; an Aggregate (or its
        # HAVING filter) below the window keeps its own pushdown discipline.
        from_like = isinstance(
            below, (ScanNode, IndexScanNode, DerivedScanNode, JoinNode)
        ) or (isinstance(below, FilterNode) and below.phase == "where")
        scope = self._scope_of(below) if from_like else None
        key_sets = self._window_partition_keys(window)
        pushable: list[SqlNode] = []
        kept: list[SqlNode] = []
        for conjunct in conjuncts:
            reason: str | None = None
            if key_sets is None or not self._refs_only_partition_keys(
                conjunct, key_sets
            ):
                reason = "references non-partition column(s)"
            elif not from_like or not expression_type_and_totality(conjunct, scope)[1]:
                reason = "conjunct is not provably total below the window"
            if reason is None:
                pushable.append(conjunct)
                self._trace.record(
                    "predicate_pushdown",
                    f"pushed {to_sql(conjunct)} below window boundary "
                    f"(partition keys only)",
                )
            else:
                kept.append(conjunct)
                self._trace.record(
                    "predicate_pushdown",
                    f"kept {to_sql(conjunct)} above window boundary: {reason}",
                )
        return pushable, kept

    @staticmethod
    def _window_partition_keys(window: WindowNode) -> list[list[ColumnRef]] | None:
        """Per-window bare-ColumnRef partition keys, or None when some window
        has none (nothing can then legally cross the boundary)."""
        key_sets: list[list[ColumnRef]] = []
        for call in window.windows:
            keys = [
                expr for expr in call.spec.partition_by if isinstance(expr, ColumnRef)
            ]
            if not keys:
                return None
            key_sets.append(keys)
        return key_sets

    @staticmethod
    def _refs_only_partition_keys(
        conjunct: SqlNode, key_sets: list[list[ColumnRef]]
    ) -> bool:
        refs = [node for node in conjunct.walk() if isinstance(node, ColumnRef)]
        if not refs:
            return False
        for ref in refs:
            for keys in key_sets:
                if not any(
                    ref.name == key.name
                    and (
                        ref.table is None
                        or key.table is None
                        or ref.table == key.table
                    )
                    for key in keys
                ):
                    return False
        return True

    def _attach_window(self, window: WindowNode, inner: PlanNode) -> WindowNode:
        """Re-wrap a rewritten input in the WindowNode, choosing index orders.

        When the input is a plain base-table scan and a window's single
        ascending ORDER BY key has an ordered secondary index whose statistics
        prove the column self-comparable, the sort for that window spec can be
        served by the index (the executor re-verifies coverage and NULL-
        freeness at run time and falls back to sorting otherwise).
        """
        index_orders = dict(window.index_orders)
        if (
            self._catalog is not None
            and isinstance(inner, ScanNode)
            and inner.table_name != "<dual>"
            and inner.table_name.lower() not in self._cte_types
            and self._catalog.has_table(inner.table_name)
        ):
            table = self._catalog.table(inner.table_name)
            for call in window.windows:
                key = window_sort_key(call.spec)
                if key in index_orders:
                    continue
                order = self._window_index_order(call.spec, inner, table)
                if order is not None:
                    index_orders[key] = order
                    self._trace.record(
                        "access_path",
                        f"window ORDER BY {order[1]} served by ordered index on "
                        f"{order[0]}.{order[1]} (sort elided)",
                    )
                    self._trace.record_access(
                        decision="window_sort_elision",
                        table=order[0],
                        column=order[1],
                        kind="ordered",
                        op="window_order",
                        chosen=True,
                    )
        return WindowNode(
            input=inner, windows=list(window.windows), index_orders=index_orders
        )

    def _window_index_order(
        self, spec, scan: ScanNode, table
    ) -> tuple[str, str] | None:
        if len(spec.order_by) != 1:
            return None
        item = spec.order_by[0]
        if item.descending:
            # Reversing index order would flip tie order relative to the
            # stable sort path; refuse rather than diverge.
            return None
        ref = item.expr
        if not isinstance(ref, ColumnRef):
            return None
        if not self._ref_binds_to_scan(ref, scan, table):
            return None
        index = table.column_index(ref.name, "ordered")
        if index is None or index.poisoned:
            return None
        try:
            column_type = table.value_type(ref.name)
        except Exception:  # noqa: BLE001 - stats are best effort
            return None
        if column_type is None or not _comparable(column_type, column_type):
            return None
        return (scan.table_name, ref.name)

    def _scope_of(self, plan: PlanNode) -> dict[str, BindingInfo] | None:
        return plan_binding_infos(plan, self._catalog, self._cte_types)

    @staticmethod
    def _classify_side(
        conjunct: SqlNode,
        left: dict[str, BindingInfo] | None,
        right: dict[str, BindingInfo] | None,
    ) -> str | None:
        """'L' / 'R' / 'B'(oth) or None when any reference is ambiguous/outer."""
        if left is None or right is None:
            return None
        refs = [node for node in conjunct.walk() if isinstance(node, ColumnRef)]
        if not refs:
            return None
        sides: set[str] = set()
        for ref in refs:
            in_left = _ref_resolves(ref, left)
            in_right = _ref_resolves(ref, right)
            if in_left == in_right:  # both (ambiguous) or neither (outer)
                return None
            sides.add("L" if in_left else "R")
        if sides == {"L"}:
            return "L"
        if sides == {"R"}:
            return "R"
        return "B"

    def _push_join(self, join: JoinNode, incoming: list[SqlNode]) -> PlanNode:
        left_scope = self._scope_of(join.left)
        right_scope = self._scope_of(join.right)
        combined: dict[str, BindingInfo] | None = None
        if left_scope is not None and right_scope is not None:
            combined = {**left_scope, **right_scope}
        join_type = join.join_type

        to_left: list[SqlNode] = []
        to_right: list[SqlNode] = []
        on_keep: list[SqlNode] = []
        leftovers: list[SqlNode] = []

        # The join's own ON conjuncts: pushable into an input only when the
        # join does not preserve that input's unmatched rows.
        if join.condition is not None:
            for conjunct in split_conjuncts(self._fold_predicate(join.condition)):
                side = self._classify_side(conjunct, left_scope, right_scope)
                movable = expression_type_and_totality(conjunct, combined)[1]
                if movable and side == "L" and join_type == "INNER":
                    to_left.append(conjunct)
                    self._trace.record(
                        "predicate_pushdown",
                        f"pushed join condition {to_sql(conjunct)} into left input",
                    )
                elif movable and side == "R" and join_type in ("INNER", "LEFT"):
                    to_right.append(conjunct)
                    self._trace.record(
                        "predicate_pushdown",
                        f"pushed join condition {to_sql(conjunct)} into right input",
                    )
                elif movable and side == "L" and join_type == "RIGHT":
                    to_left.append(conjunct)
                    self._trace.record(
                        "predicate_pushdown",
                        f"pushed join condition {to_sql(conjunct)} into left input",
                    )
                else:
                    on_keep.append(conjunct)

        # WHERE conjuncts arriving from above: pushable into the side they
        # reference (preserved sides only for outer joins), or merged into an
        # INNER/CROSS join condition when they span both sides.
        for conjunct in incoming:
            side = self._classify_side(conjunct, left_scope, right_scope)
            movable = expression_type_and_totality(conjunct, combined)[1]
            if movable and side == "L" and join_type in ("INNER", "CROSS", "LEFT"):
                to_left.append(conjunct)
                self._trace.record(
                    "predicate_pushdown", f"pushed {to_sql(conjunct)} into left input"
                )
            elif movable and side == "R" and join_type in ("INNER", "CROSS", "RIGHT"):
                to_right.append(conjunct)
                self._trace.record(
                    "predicate_pushdown", f"pushed {to_sql(conjunct)} into right input"
                )
            elif (
                movable
                and side == "B"
                and join_type in ("INNER", "CROSS")
                and not join.using
            ):
                on_keep.append(conjunct)
                self._trace.record(
                    "predicate_pushdown",
                    f"merged {to_sql(conjunct)} into the join condition",
                )
            else:
                leftovers.append(conjunct)

        new_type = "INNER" if join_type == "CROSS" and on_keep else join_type
        rebuilt = JoinNode(
            left=self._push_into(join.left, to_left),
            right=self._push_into(join.right, to_right),
            join_type=new_type,
            condition=join_conjuncts(on_keep),
            using=list(join.using),
        )
        return self._wrap_filter(rebuilt, leftovers)

    def _push_having(
        self,
        predicate: SqlNode,
        aggregate: AggregateNode,
        source: PlanNode,
        pool: list[SqlNode],
    ) -> SqlNode | None:
        """Move group-key-only HAVING conjuncts into the WHERE pool.

        Such conjuncts are constant within each group, so filtering rows
        before aggregation keeps or drops entire groups — exactly HAVING's
        semantics — without perturbing surviving groups' aggregates.
        Returns the predicate that must stay above the aggregation.
        """
        folded = self._fold_predicate(predicate)
        scope = self._scope_of(source)
        group_refs: list[ColumnRef] = [
            expr for expr in aggregate.group_by if isinstance(expr, ColumnRef)
        ]
        kept: list[SqlNode] = []
        for conjunct in split_conjuncts(folded):
            if self._having_conjunct_pushable(conjunct, group_refs, scope):
                pool.append(conjunct)
                self._trace.record(
                    "predicate_pushdown",
                    f"pushed HAVING conjunct {to_sql(conjunct)} below aggregation",
                )
            else:
                kept.append(conjunct)
        return join_conjuncts(kept)

    def _having_conjunct_pushable(
        self,
        conjunct: SqlNode,
        group_refs: list[ColumnRef],
        scope: dict[str, BindingInfo] | None,
    ) -> bool:
        refs: list[ColumnRef] = []
        for node in conjunct.walk():
            if isinstance(node, Select):
                return False
            if (
                isinstance(node, FunctionCall)
                and is_aggregate_function(node.name)
                and not is_scalar_function(node.name)
            ):
                return False
            if isinstance(node, ColumnRef):
                refs.append(node)
        if not refs:
            return False
        for ref in refs:
            if not any(
                group.name == ref.name
                and (group.table is None or ref.table is None or group.table == ref.table)
                for group in group_refs
            ):
                return False
        return expression_type_and_totality(conjunct, scope)[1]

    # -- derived-table pushdown ----------------------------------------- #

    def _push_into_derived(
        self, derived: DerivedScanNode, conjuncts: list[SqlNode]
    ) -> tuple[DerivedScanNode, list[SqlNode]]:
        """Push conjuncts through a derived table's projection when legal."""
        wrappers: list[PlanNode] = []
        core = derived.input
        while isinstance(core, (DistinctNode, SortNode)):
            wrappers.append(core)
            core = core.input
        if not isinstance(core, ProjectNode):
            return derived, conjuncts
        raw_names: list[str] = []
        for item in core.items:
            if isinstance(item.expr, Star):
                return derived, conjuncts
            raw_names.append(item.output_name())
        if len(set(raw_names)) != len(raw_names):
            return derived, conjuncts
        mapping = {name: item.expr for name, item in zip(raw_names, core.items)}
        inner_scope = self._inner_scope_of(core.input)

        pushed: list[SqlNode] = []
        remaining: list[SqlNode] = []
        for conjunct in conjuncts:
            if any(isinstance(node, Select) for node in conjunct.walk()):
                remaining.append(conjunct)
                continue
            refs = [node for node in conjunct.walk() if isinstance(node, ColumnRef)]
            if not refs or not all(
                ref.table in (None, derived.alias) and ref.name in mapping for ref in refs
            ):
                remaining.append(conjunct)
                continue
            substituted = transform(
                conjunct,
                lambda node: mapping[node.name]
                if isinstance(node, ColumnRef)
                and node.table in (None, derived.alias)
                and node.name in mapping
                else None,
            )
            if any(isinstance(node, WindowCall) for node in substituted.walk()):
                remaining.append(conjunct)
                self._trace.record(
                    "predicate_pushdown",
                    f"kept {to_sql(conjunct)} above window boundary: "
                    f"references window function output",
                )
                continue
            if not expression_type_and_totality(substituted, inner_scope)[1]:
                remaining.append(conjunct)
                continue
            pushed.append(substituted)
            self._trace.record(
                "predicate_pushdown",
                f"pushed {to_sql(conjunct)} into derived table {derived.alias} "
                f"as {to_sql(substituted)}",
            )
        if not pushed:
            return derived, conjuncts

        if isinstance(core.input, (AggregateNode, FilterNode)) and not (
            isinstance(core.input, FilterNode) and core.input.phase == "where"
        ):
            new_input: PlanNode = self._wrap_filter(core.input, pushed)
        else:
            new_input = self._push_into(core.input, pushed)
        rebuilt: PlanNode = ProjectNode(input=new_input, items=list(core.items))
        for wrapper in reversed(wrappers):
            if isinstance(wrapper, DistinctNode):
                rebuilt = DistinctNode(input=rebuilt)
            else:
                rebuilt = SortNode(input=rebuilt, order_by=list(wrapper.order_by))  # type: ignore[union-attr]
        return DerivedScanNode(alias=derived.alias, input=rebuilt), remaining

    def _inner_scope_of(self, below_project: PlanNode) -> dict[str, BindingInfo] | None:
        node = below_project
        while isinstance(node, (FilterNode, WindowNode)):
            node = node.input
        if isinstance(node, AggregateNode):
            node = node.input
            while isinstance(node, FilterNode):
                node = node.input
        return self._scope_of(node)

    # ------------------------------------------------------------------ #
    # Rule: greedy join reordering
    # ------------------------------------------------------------------ #

    def _reorder_joins(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, FilterNode):
            return FilterNode(
                input=self._reorder_joins(plan.input),
                predicate=plan.predicate,
                phase=plan.phase,
            )
        if not isinstance(plan, JoinNode):
            return plan
        if plan.join_type in ("INNER", "CROSS") and not plan.using:
            leaves, conjuncts, region_ok = self._collect_region(plan)
            if region_ok and len(leaves) >= 3:
                leaves = [
                    self._reorder_joins(leaf)
                    if isinstance(leaf, (JoinNode, FilterNode))
                    else leaf
                    for leaf in leaves
                ]
                reordered = self._greedy_order(leaves, conjuncts)
                if reordered is not None:
                    return reordered
        return JoinNode(
            left=self._reorder_joins(plan.left),
            right=self._reorder_joins(plan.right),
            join_type=plan.join_type,
            condition=plan.condition,
            using=list(plan.using),
        )

    def _collect_region(
        self, join: JoinNode
    ) -> tuple[list[PlanNode], list[SqlNode], bool]:
        """Flatten a maximal INNER/CROSS join region into (leaves, conjuncts).

        ``region_ok`` is False when any join carries USING, any conjunct is
        non-total, or any leaf's scope is unknown — reordering is then
        skipped for the whole region.
        """
        leaves: list[PlanNode] = []
        conjuncts: list[SqlNode] = []

        def visit(node: PlanNode) -> None:
            if (
                isinstance(node, JoinNode)
                and node.join_type in ("INNER", "CROSS")
                and not node.using
            ):
                visit(node.left)
                visit(node.right)
                if node.condition is not None:
                    conjuncts.extend(split_conjuncts(node.condition))
                return
            leaves.append(node)

        visit(join)
        scopes = [self._scope_of(leaf) for leaf in leaves]
        if any(scope is None for scope in scopes):
            return leaves, conjuncts, False
        merged: dict[str, BindingInfo] = {}
        for scope in scopes:
            assert scope is not None
            if set(scope) & set(merged):
                return leaves, conjuncts, False
            merged.update(scope)
        for conjunct in conjuncts:
            if not expression_type_and_totality(conjunct, merged)[1]:
                return leaves, conjuncts, False
            if self._conjunct_leafset(conjunct, scopes) is None:
                return leaves, conjuncts, False
        return leaves, conjuncts, True

    @staticmethod
    def _conjunct_leafset(
        conjunct: SqlNode, scopes: list[dict[str, BindingInfo] | None]
    ) -> frozenset[int] | None:
        """Indices of the leaves a conjunct's references resolve to."""
        indices: set[int] = set()
        refs = [node for node in conjunct.walk() if isinstance(node, ColumnRef)]
        if not refs:
            return None
        for ref in refs:
            owner = None
            for index, scope in enumerate(scopes):
                if scope is not None and _ref_resolves(ref, scope):
                    if owner is not None:
                        return None  # ambiguous across leaves
                    owner = index
            if owner is None:
                return None  # outer / unknown reference
            indices.add(owner)
        return frozenset(indices)

    def _greedy_order(
        self, leaves: list[PlanNode], conjuncts: list[SqlNode]
    ) -> PlanNode | None:
        scopes = [self._scope_of(leaf) for leaf in leaves]
        rows = [self._estimate_rows(leaf) for leaf in leaves]
        conjunct_sets: list[frozenset[int]] = []
        for conjunct in conjuncts:
            leafset = self._conjunct_leafset(conjunct, scopes)
            assert leafset is not None  # guaranteed by _collect_region
            conjunct_sets.append(leafset)

        remaining = set(range(len(leaves)))
        order: list[int] = []
        used: set[int] = set()
        placed_conjuncts: list[list[int]] = []

        start = min(remaining, key=lambda index: (rows[index], index))
        order.append(start)
        remaining.discard(start)
        placed_conjuncts.append([])
        current_rows = rows[start]

        while remaining:
            best: tuple[float, int, int, list[int]] | None = None
            for candidate in sorted(remaining):
                chosen = set(order) | {candidate}
                usable = [
                    index
                    for index, leafset in enumerate(conjunct_sets)
                    if index not in used and leafset <= chosen
                ]
                selectivity = 1.0
                connected = 0
                for index in usable:
                    conjunct = conjuncts[index]
                    selectivity *= self._join_conjunct_selectivity(
                        conjunct, scopes, rows, candidate
                    )
                    connected = 1
                estimate = current_rows * rows[candidate] * selectivity
                key = (estimate, -connected, candidate, usable)
                if best is None or key[:3] < best[:3]:
                    best = key
            assert best is not None
            estimate, _, candidate, usable = best
            order.append(candidate)
            remaining.discard(candidate)
            used.update(usable)
            placed_conjuncts.append(usable)
            current_rows = max(estimate, 1.0)

        if order == list(range(len(leaves))):
            return None  # already in the chosen order

        tree: PlanNode = leaves[order[0]]
        for position in range(1, len(order)):
            attached = [conjuncts[index] for index in placed_conjuncts[position]]
            condition = join_conjuncts(attached)
            tree = JoinNode(
                left=tree,
                right=leaves[order[position]],
                join_type="INNER" if condition is not None else "CROSS",
                condition=condition,
            )
        unplaced = [c for i, c in enumerate(conjuncts) if i not in used]
        tree = self._wrap_filter(tree, unplaced)
        self._trace.record(
            "join_reorder",
            "reordered ["
            + ", ".join(self._leaf_label(leaf) for leaf in leaves)
            + "] -> ["
            + ", ".join(self._leaf_label(leaves[index]) for index in order)
            + "]",
        )
        return tree

    @staticmethod
    def _leaf_label(leaf: PlanNode) -> str:
        node = leaf
        while isinstance(node, FilterNode):
            node = node.input
        if isinstance(node, ScanNode):
            return node.binding_name
        if isinstance(node, DerivedScanNode):
            return node.alias
        return type(node).__name__

    # -- statistics-driven estimates ------------------------------------ #

    def _estimate_rows(self, plan: PlanNode) -> float:
        if isinstance(plan, ScanNode):
            if plan.table_name == "<dual>":
                return 1.0
            if plan.table_name.lower() in self._cte_types:
                return _DEFAULT_ROWS
            if self._catalog is not None and self._catalog.has_table(plan.table_name):
                return float(max(self._catalog.table(plan.table_name).row_count, 1))
            return _DEFAULT_ROWS
        if isinstance(plan, IndexScanNode):
            base = _DEFAULT_ROWS
            if self._catalog is not None and self._catalog.has_table(plan.table_name):
                base = float(max(self._catalog.table(plan.table_name).row_count, 1))
            return max(base * plan.estimated_selectivity, 1.0)
        if isinstance(plan, FilterNode):
            base = self._estimate_rows(plan.input)
            scope = self._scope_of(plan.input)
            selectivity = 1.0
            for conjunct in split_conjuncts(plan.predicate):
                selectivity *= self._conjunct_selectivity(conjunct, scope)
            return max(base * selectivity, 1.0)
        if isinstance(plan, DerivedScanNode):
            return self._estimate_rows(plan.input)
        if isinstance(plan, (ProjectNode, SortNode, DistinctNode, CteNode, WindowNode)):
            return self._estimate_rows(plan.input)
        if isinstance(plan, LimitNode):
            base = self._estimate_rows(plan.input)
            return min(base, float(plan.limit)) if plan.limit is not None else base
        if isinstance(plan, AggregateNode):
            return max(self._estimate_rows(plan.input) ** 0.5, 1.0)
        if isinstance(plan, SetOpNode):
            return self._estimate_rows(plan.left) + self._estimate_rows(plan.right)
        if isinstance(plan, JoinNode):
            return max(
                self._estimate_rows(plan.left) * self._estimate_rows(plan.right) * 0.1,
                1.0,
            )
        return _DEFAULT_ROWS

    def _single_column(self, expr: SqlNode) -> ColumnRef | None:
        refs = [node for node in expr.walk() if isinstance(node, ColumnRef)]
        return refs[0] if len(refs) == 1 else None

    def _column_stats(
        self, ref: ColumnRef, scope: dict[str, BindingInfo] | None
    ) -> tuple[int | None, tuple[Any, Any] | None]:
        """(distinct count, value range) for a base-table column, else Nones."""
        if scope is None:
            return None, None
        infos = (
            [scope[ref.table]] if ref.table and ref.table in scope else
            [info for info in scope.values() if ref.name in info.columns]
        )
        if len(infos) != 1 or infos[0].table is None or ref.name not in infos[0].columns:
            return None, None
        table = infos[0].table
        try:
            return table.distinct_count(ref.name), table.value_range(ref.name)
        except Exception:  # noqa: BLE001 - stats are best effort
            return None, None

    def _conjunct_selectivity(
        self, conjunct: SqlNode, scope: dict[str, BindingInfo] | None
    ) -> float:
        result = self._raw_selectivity(conjunct, scope)
        return min(max(result, 1e-4), 1.0)

    def _raw_selectivity(
        self, conjunct: SqlNode, scope: dict[str, BindingInfo] | None
    ) -> float:
        if isinstance(conjunct, BinaryOp):
            op = conjunct.op
            if op == "AND":
                return self._raw_selectivity(conjunct.left, scope) * self._raw_selectivity(
                    conjunct.right, scope
                )
            if op == "OR":
                a = self._raw_selectivity(conjunct.left, scope)
                b = self._raw_selectivity(conjunct.right, scope)
                return 1.0 - (1.0 - a) * (1.0 - b)
            column, literal = self._column_literal(conjunct)
            if op == "=":
                if column is not None:
                    distinct, _ = self._column_stats(column, scope)
                    if distinct:
                        return 1.0 / max(distinct, 1)
                return 0.1
            if op == "<>":
                return 0.9
            if op in ("<", "<=", ">", ">="):
                if column is not None and isinstance(literal, (int, float)):
                    if isinstance(conjunct.left, Literal):
                        # Literal-on-left: "30 > val" means "val < 30".
                        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
                    _, value_range = self._column_stats(column, scope)
                    if (
                        value_range is not None
                        and isinstance(value_range[0], (int, float))
                        and isinstance(value_range[1], (int, float))
                        and value_range[1] > value_range[0]
                    ):
                        low, high = float(value_range[0]), float(value_range[1])
                        fraction = (float(literal) - low) / (high - low)
                        fraction = min(max(fraction, 0.0), 1.0)
                        return fraction if op in ("<", "<=") else 1.0 - fraction
                return 0.33
            if op == "LIKE":
                return 0.25
            return 0.33
        if isinstance(conjunct, BetweenOp):
            return 0.25
        if isinstance(conjunct, InList):
            column = self._single_column(conjunct.expr)
            if column is not None:
                distinct, _ = self._column_stats(column, scope)
                if distinct:
                    return min(len(conjunct.items) / max(distinct, 1), 1.0)
            return 0.3
        if isinstance(conjunct, IsNull):
            return 0.9 if conjunct.negated else 0.1
        if isinstance(conjunct, UnaryOp) and conjunct.op == "NOT":
            return 1.0 - self._raw_selectivity(conjunct.operand, scope)
        return 0.33

    @staticmethod
    def _column_literal(conjunct: BinaryOp) -> tuple[ColumnRef | None, Any]:
        """(column, literal value) of a col-vs-literal comparison, else Nones."""
        if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
            return conjunct.left, conjunct.right.value
        if isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
            return conjunct.right, conjunct.left.value
        return None, None

    def _join_conjunct_selectivity(
        self,
        conjunct: SqlNode,
        scopes: list[dict[str, BindingInfo] | None],
        rows: list[float],
        candidate: int,
    ) -> float:
        """Selectivity of one join conjunct when attaching ``candidate``."""
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            distincts: list[float] = []
            for side in (conjunct.left, conjunct.right):
                column = self._single_column(side)
                distinct = None
                if column is not None:
                    for scope in scopes:
                        count, _ = self._column_stats(column, scope)
                        if count:
                            distinct = count
                            break
                distincts.append(float(distinct) if distinct else max(rows[candidate], 1.0))
            return 1.0 / max(max(distincts), 1.0)
        return 0.5

    # ------------------------------------------------------------------ #
    # Rule: access-path selection (scan vs secondary index)
    # ------------------------------------------------------------------ #

    def choose_access_paths(self, plan: PlanNode) -> PlanNode:
        """Replace ``Filter(Scan)`` pairs with index scans where they win.

        Runs after rewriting (so predicates have been folded, split and
        pushed onto their scans) and before pruning (so a chosen
        ``IndexScanNode`` participates in column narrowing like any scan).
        """
        if self._catalog is None:
            return plan
        shadowed = set(self._outer_cte_names)
        for node in plan.walk():
            if isinstance(node, CteNode):
                for definition in node.definitions:
                    shadowed.add(definition.name.lower())
        return self._select_access(plan, shadowed)

    def _select_access(self, plan: PlanNode, shadowed: set[str]) -> PlanNode:
        if (
            isinstance(plan, FilterNode)
            and plan.phase == "where"
            and isinstance(plan.input, ScanNode)
        ):
            chosen = self._try_index_scan(plan.input, plan.predicate, shadowed)
            if chosen is not None:
                return chosen
            return plan
        if isinstance(plan, FilterNode):
            return FilterNode(
                input=self._select_access(plan.input, shadowed),
                predicate=plan.predicate,
                phase=plan.phase,
            )
        if isinstance(plan, JoinNode):
            return JoinNode(
                left=self._select_access(plan.left, shadowed),
                right=self._select_access(plan.right, shadowed),
                join_type=plan.join_type,
                condition=plan.condition,
                using=list(plan.using),
            )
        if isinstance(plan, DerivedScanNode):
            return DerivedScanNode(
                alias=plan.alias, input=self._select_access(plan.input, shadowed)
            )
        if isinstance(plan, AggregateNode):
            return AggregateNode(
                input=self._select_access(plan.input, shadowed),
                group_by=list(plan.group_by),
                aggregates=list(plan.aggregates),
            )
        if isinstance(plan, ProjectNode):
            return ProjectNode(
                input=self._select_access(plan.input, shadowed), items=list(plan.items)
            )
        if isinstance(plan, WindowNode):
            return WindowNode(
                input=self._select_access(plan.input, shadowed),
                windows=list(plan.windows),
                index_orders=dict(plan.index_orders),
            )
        if isinstance(plan, DistinctNode):
            return DistinctNode(input=self._select_access(plan.input, shadowed))
        if isinstance(plan, SortNode):
            return SortNode(
                input=self._select_access(plan.input, shadowed),
                order_by=list(plan.order_by),
            )
        if isinstance(plan, LimitNode):
            return LimitNode(
                input=self._select_access(plan.input, shadowed),
                limit=plan.limit,
                offset=plan.offset,
            )
        if isinstance(plan, SetOpNode):
            return SetOpNode(
                op=plan.op,
                left=self._select_access(plan.left, shadowed),
                right=self._select_access(plan.right, shadowed),
                all=plan.all,
            )
        if isinstance(plan, CteNode):
            return CteNode(
                definitions=[
                    CteDefinition(
                        name=definition.name,
                        columns=list(definition.columns),
                        plan=self._select_access(definition.plan, shadowed),
                    )
                    for definition in plan.definitions
                ],
                input=self._select_access(plan.input, shadowed),
            )
        return plan

    def _try_index_scan(
        self, scan: ScanNode, predicate: SqlNode, shadowed: set[str]
    ) -> PlanNode | None:
        """The rewritten ``IndexScan`` (+ residual filter) or None to keep."""
        if scan.table_name == "<dual>" or scan.table_name.lower() in shadowed:
            return None
        if not self._catalog.has_table(scan.table_name):
            return None
        table = self._catalog.table(scan.table_name)
        if table.row_count < _INDEX_SCAN_MIN_ROWS:
            return None
        conjuncts = split_conjuncts(predicate)
        scope = {
            scan.binding_name: BindingInfo(
                columns=list(table.column_names), table=table
            )
        }
        best: tuple[float, int, IndexAccessPath] | None = None
        for position, conjunct in enumerate(conjuncts):
            access = self._indexable_access(conjunct, scan, table)
            if access is None:
                continue
            selectivity = self._conjunct_selectivity(conjunct, scope)
            if best is None or selectivity < best[0]:
                best = (selectivity, position, access)
        if best is None:
            return None
        selectivity, position, access = best
        if selectivity > _INDEX_SCAN_MAX_SELECTIVITY:
            self._trace.record(
                "access_path",
                f"kept sequential scan of {scan.table_name}: best indexable "
                f"conjunct {to_sql(conjuncts[position])} too unselective "
                f"(est. {selectivity:.4f})",
            )
            self._trace.record_access(
                decision="seq_scan",
                table=scan.table_name,
                column=access.column,
                kind=access.kind,
                op=access.op,
                chosen=False,
                reason="too unselective",
                estimated_selectivity=selectivity,
            )
            return None
        residual = [c for index, c in enumerate(conjuncts) if index != position]
        index_scan = IndexScanNode(
            table_name=scan.table_name,
            binding_name=scan.binding_name,
            access=access,
            columns=list(scan.columns) if scan.columns is not None else None,
            estimated_selectivity=selectivity,
        )
        detail = (
            f"chose {access.kind} index on {scan.table_name}.{access.column} "
            f"for {to_sql(conjuncts[position])} (est. selectivity {selectivity:.4f})"
        )
        if residual:
            detail += f"; residual filter keeps {len(residual)} conjunct(s)"
        self._trace.record("access_path", detail)
        self._trace.record_access(
            decision="index_scan",
            table=scan.table_name,
            column=access.column,
            kind=access.kind,
            op=access.op,
            chosen=True,
            estimated_selectivity=selectivity,
            residual_conjuncts=len(residual),
        )
        return self._wrap_filter(index_scan, residual)

    def _indexable_access(
        self, conjunct: SqlNode, scan: ScanNode, table
    ) -> IndexAccessPath | None:
        """An index access path serving this conjunct exactly, or None.

        Only plan-time-constant operands qualify (parameters would bake one
        parameter set into a cached plan), and ordered paths additionally
        require the statistics to prove the probe comparable with the
        column, so a chosen path can never raise where the fused predicate
        would not.
        """
        if isinstance(conjunct, BinaryOp) and conjunct.op in ("=", "<", "<=", ">", ">="):
            op = conjunct.op
            if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
                ref, literal = conjunct.left, conjunct.right.value
            elif isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
                ref, literal = conjunct.right, conjunct.left.value
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            else:
                return None
            if literal is None or not self._ref_binds_to_scan(ref, scan, table):
                return None
            if op == "=":
                kind = self._usable_kind(table, ref.name, literal, prefer_hash=True)
            else:
                kind = self._usable_kind(table, ref.name, literal, ordered_only=True)
            if kind is None:
                return None
            return IndexAccessPath(column=ref.name, kind=kind, op=op, values=(literal,))
        if isinstance(conjunct, BetweenOp) and not conjunct.negated:
            ref = conjunct.expr
            if (
                not isinstance(ref, ColumnRef)
                or not isinstance(conjunct.low, Literal)
                or not isinstance(conjunct.high, Literal)
            ):
                return None
            low, high = conjunct.low.value, conjunct.high.value
            if low is None or high is None or not self._ref_binds_to_scan(ref, scan, table):
                return None
            if self._usable_kind(table, ref.name, low, ordered_only=True) is None:
                return None
            if self._usable_kind(table, ref.name, high, ordered_only=True) is None:
                return None
            return IndexAccessPath(
                column=ref.name, kind="ordered", op="between", values=(low, high)
            )
        if isinstance(conjunct, InList) and not conjunct.negated:
            ref = conjunct.expr
            if not isinstance(ref, ColumnRef) or not conjunct.items:
                return None
            if not all(isinstance(item, Literal) for item in conjunct.items):
                return None
            members = tuple(item.value for item in conjunct.items)  # type: ignore[union-attr]
            if any(member is None for member in members):
                # A NULL member changes false results to NULL; the fused path
                # handles that three-valued subtlety — leave it there.
                return None
            if not self._ref_binds_to_scan(ref, scan, table):
                return None
            index = table.column_index(ref.name, "hash")
            if index is None or index.poisoned:
                return None
            return IndexAccessPath(column=ref.name, kind="hash", op="in", values=members)
        return None

    @staticmethod
    def _ref_binds_to_scan(ref: ColumnRef, scan: ScanNode, table) -> bool:
        if ref.table is not None and ref.table != scan.binding_name:
            return False
        return table.has_column(ref.name)

    def _usable_kind(
        self,
        table,
        column: str,
        probe: Any,
        prefer_hash: bool = False,
        ordered_only: bool = False,
    ) -> str | None:
        """Which index kind (if any) can serve a probe against this column."""
        if prefer_hash and not ordered_only:
            index = table.column_index(column, "hash")
            if index is not None and not index.poisoned:
                return "hash"
        index = table.column_index(column, "ordered")
        if index is None or index.poisoned:
            return None
        try:
            column_type = table.value_type(column)
        except Exception:  # noqa: BLE001 - stats are best effort
            return None
        if not _comparable(column_type, DataType.of_value(probe)):
            return None
        return "ordered"

    # ------------------------------------------------------------------ #
    # Rule: projection pruning
    # ------------------------------------------------------------------ #

    def prune(self, plan: PlanNode) -> PlanNode:
        demands = _ColumnDemands(cte_names=set(self._outer_cte_names))
        _collect_demands(plan, demands)
        if demands.plain_star:
            return plan
        return self._apply_pruning(plan, demands)

    def _apply_pruning(self, plan: PlanNode, demands: "_ColumnDemands") -> PlanNode:
        if isinstance(plan, ScanNode):
            return self._prune_scan(plan, demands)
        if isinstance(plan, IndexScanNode):
            return self._prune_index_scan(plan, demands)
        if isinstance(plan, DerivedScanNode):
            return DerivedScanNode(
                alias=plan.alias, input=self._apply_pruning(plan.input, demands)
            )
        if isinstance(plan, JoinNode):
            return JoinNode(
                left=self._apply_pruning(plan.left, demands),
                right=self._apply_pruning(plan.right, demands),
                join_type=plan.join_type,
                condition=plan.condition,
                using=list(plan.using),
            )
        if isinstance(plan, FilterNode):
            return FilterNode(
                input=self._apply_pruning(plan.input, demands),
                predicate=plan.predicate,
                phase=plan.phase,
            )
        if isinstance(plan, AggregateNode):
            return AggregateNode(
                input=self._apply_pruning(plan.input, demands),
                group_by=list(plan.group_by),
                aggregates=list(plan.aggregates),
            )
        if isinstance(plan, ProjectNode):
            return ProjectNode(
                input=self._apply_pruning(plan.input, demands), items=list(plan.items)
            )
        if isinstance(plan, WindowNode):
            return WindowNode(
                input=self._apply_pruning(plan.input, demands),
                windows=list(plan.windows),
                index_orders=dict(plan.index_orders),
            )
        if isinstance(plan, DistinctNode):
            return DistinctNode(input=self._apply_pruning(plan.input, demands))
        if isinstance(plan, SortNode):
            return SortNode(
                input=self._apply_pruning(plan.input, demands),
                order_by=list(plan.order_by),
            )
        if isinstance(plan, LimitNode):
            return LimitNode(
                input=self._apply_pruning(plan.input, demands),
                limit=plan.limit,
                offset=plan.offset,
            )
        if isinstance(plan, SetOpNode):
            return SetOpNode(
                op=plan.op,
                left=self._apply_pruning(plan.left, demands),
                right=self._apply_pruning(plan.right, demands),
                all=plan.all,
            )
        if isinstance(plan, CteNode):
            return CteNode(
                definitions=[
                    CteDefinition(
                        name=definition.name,
                        columns=list(definition.columns),
                        plan=self._apply_pruning(definition.plan, demands),
                    )
                    for definition in plan.definitions
                ],
                input=self._apply_pruning(plan.input, demands),
            )
        return plan

    def _prune_scan(self, scan: ScanNode, demands: "_ColumnDemands") -> ScanNode:
        if scan.table_name == "<dual>" or scan.columns is not None:
            return scan
        if scan.table_name.lower() in demands.cte_names:
            return scan
        if self._catalog is None or not self._catalog.has_table(scan.table_name):
            return scan
        if scan.binding_name in demands.star_bindings:
            return scan
        table = self._catalog.table(scan.table_name)
        needed = [
            column
            for column in table.column_names
            if column in demands.names
            or (scan.binding_name, column) in demands.qualified
            or column in demands.using
        ]
        if len(needed) == len(table.column_names):
            return scan
        self._trace.record(
            "projection_pruning",
            f"scan of {scan.table_name} AS {scan.binding_name} narrowed to "
            f"[{', '.join(needed) or '<none>'}]",
        )
        return ScanNode(
            table_name=scan.table_name, binding_name=scan.binding_name, columns=needed
        )

    def _prune_index_scan(
        self, scan: IndexScanNode, demands: "_ColumnDemands"
    ) -> IndexScanNode:
        """Narrow an index scan's output columns like any base-table scan.

        The access column itself need not survive: the probe reads the
        column store directly, not the output batch.
        """
        if scan.columns is not None:
            return scan
        if self._catalog is None or not self._catalog.has_table(scan.table_name):
            return scan
        if scan.binding_name in demands.star_bindings:
            return scan
        table = self._catalog.table(scan.table_name)
        needed = [
            column
            for column in table.column_names
            if column in demands.names
            or (scan.binding_name, column) in demands.qualified
            or column in demands.using
        ]
        if len(needed) == len(table.column_names):
            return scan
        self._trace.record(
            "projection_pruning",
            f"index scan of {scan.table_name} AS {scan.binding_name} narrowed to "
            f"[{', '.join(needed) or '<none>'}]",
        )
        return IndexScanNode(
            table_name=scan.table_name,
            binding_name=scan.binding_name,
            access=scan.access,
            columns=needed,
            estimated_selectivity=scan.estimated_selectivity,
        )


@dataclass
class _ColumnDemands:
    """Every column name the plan could resolve against a scan at run time."""

    qualified: set[tuple[str, str]] = field(default_factory=set)  # (binding, column)
    names: set[str] = field(default_factory=set)  # unqualified references
    star_bindings: set[str] = field(default_factory=set)  # t.* expansions
    using: set[str] = field(default_factory=set)  # USING join columns
    cte_names: set[str] = field(default_factory=set)  # lowercase CTE names
    plain_star: bool = False  # SELECT * anywhere: disable pruning


def _ref_resolves(ref: ColumnRef, scope: dict[str, BindingInfo]) -> bool:
    if ref.table:
        info = scope.get(ref.table)
        return info is not None and ref.name in info.columns
    return any(ref.name in info.columns for info in scope.values())


def _collect_demands(plan: PlanNode, demands: _ColumnDemands) -> None:
    for node in plan.walk():
        if isinstance(node, FilterNode):
            _collect_expr_demands(node.predicate, demands)
        elif isinstance(node, JoinNode):
            if node.condition is not None:
                _collect_expr_demands(node.condition, demands)
            demands.using.update(node.using)
        elif isinstance(node, AggregateNode):
            for expr in list(node.group_by) + list(node.aggregates):
                _collect_expr_demands(expr, demands)
        elif isinstance(node, WindowNode):
            for call in node.windows:
                _collect_expr_demands(call, demands)
        elif isinstance(node, ProjectNode):
            for item in node.items:
                _collect_expr_demands(item.expr, demands)
        elif isinstance(node, SortNode):
            for item in node.order_by:
                _collect_expr_demands(item.expr, demands)
        elif isinstance(node, CteNode):
            for definition in node.definitions:
                demands.cte_names.add(definition.name.lower())


def _collect_expr_demands(expr: SqlNode, demands: _ColumnDemands) -> None:
    if isinstance(expr, FunctionCall) and expr.args and isinstance(expr.args[0], Star):
        # count(*) and friends demand row counts, not columns.
        for arg in expr.args[1:]:
            _collect_expr_demands(arg, demands)
        return
    if isinstance(expr, ColumnRef):
        if expr.table:
            demands.qualified.add((expr.table, expr.name))
        else:
            demands.names.add(expr.name)
        return
    if isinstance(expr, Star):
        if expr.table:
            demands.star_bindings.add(expr.table)
        else:
            demands.plain_star = True
        return
    for child in expr.children():
        _collect_expr_demands(child, demands)
