"""Quickstart: generate an interactive interface from a SQL query log.

Run with::

    python examples/quickstart.py

Loads the synthetic COVID-19 catalog, takes the analyst's first three queries
(the overview timeline plus two detail date ranges), runs the PI2 pipeline and

* prints the generated interface (charts, widgets, interactions, layout),
* simulates a brush on the overview chart and shows the rewritten SQL,
* writes a self-contained HTML rendering next to this script.
"""

from __future__ import annotations

from pathlib import Path

from repro import LARGE_SCREEN, PipelineConfig, generate_interface
from repro.datasets import covid_query_log, load_covid_catalog
from repro.interface import InteractionType, save_interface_html


def main() -> None:
    catalog = load_covid_catalog()
    queries = covid_query_log()[:3]

    print("Input query log:")
    for index, sql in enumerate(queries, start=1):
        print(f"  Q{index}: {sql}")

    result = generate_interface(
        queries,
        catalog,
        PipelineConfig(method="mcts", mcts_iterations=80, seed=1, screen=LARGE_SCREEN, name="quickstart"),
    )

    print("\nGenerated interface:")
    print(result.interface.describe())
    print("\nGeneration summary:", result.summary())

    # Attach the interface to the catalog and interact with it.
    state = result.start_session(catalog)
    brushes = [
        interaction
        for interaction in result.interface.interactions
        if interaction.interaction_type is InteractionType.BRUSH_X
    ]
    if brushes:
        brush = brushes[0]
        tree_index = brush.bindings[0].tree_index
        print(f"\nBrushing {brush.source_vis_id} over date = ['2021-12-20', '2021-12-27'] ...")
        print("  SQL before:", state.current_sql(tree_index))
        state.apply_brush(brush.interaction_id, "2021-12-20", "2021-12-27")
        print("  SQL after: ", state.current_sql(tree_index))
        print("  rows now:  ", state.data_for_tree(tree_index).row_count)

    output = Path(__file__).with_name("quickstart_interface.html")
    save_interface_html(result.interface, output, data=state.refresh_all())
    print(f"\nWrote {output}")


if __name__ == "__main__":
    main()
