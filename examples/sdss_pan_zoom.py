"""The SDSS example of Figure 1: Lux vs Hex vs PI2 on celestial region queries.

Run with::

    python examples/sdss_pan_zoom.py

Two queries from the (synthetic) SDSS log retrieve objects inside different
ra/dec bounding boxes.  The script shows what each system makes of them:

* the Lux-like recommender emits one static scatter per query,
* the Hex-like baseline parameterizes the four bounds and needs four sliders
  configured by hand,
* PI2 merges the queries into one Difftree, factors the shared BETWEEN
  structure and generates a single scatter plot with pan/zoom — then the
  script pans/zooms it programmatically and shows the rewritten SQL.
"""

from __future__ import annotations

from pathlib import Path

from repro import PipelineConfig, generate_interface
from repro.baselines import HexBaseline, LuxBaseline
from repro.datasets import load_sdss_catalog, sdss_query_log
from repro.interface import save_interface_html


def main() -> None:
    catalog = load_sdss_catalog()
    queries = sdss_query_log()

    print("Input query log:")
    for index, sql in enumerate(queries, start=1):
        print(f"  Q{index}: {sql}")

    print("\n(a) Lux-like static recommendations:")
    lux = LuxBaseline(catalog=catalog)
    for recommendation in lux.recommend(queries):
        print(f"  {recommendation.visualization.describe()}  ({recommendation.data.row_count} rows)")

    print("\n(b) Hex-like parameterized query:")
    hex_baseline = HexBaseline(catalog)
    hex_interface = hex_baseline.parameterize(queries[0])
    print(f"  template: {hex_interface.query_template}")
    for parameter in hex_interface.parameters:
        print(f"  widget: {parameter.widget.describe()}")
    print(f"  manual configuration steps required: {hex_interface.manual_steps}")

    print("\n(c) PI2 generated interface:")
    result = generate_interface(
        queries, catalog, PipelineConfig(method="mcts", mcts_iterations=80, seed=1, name="sdss")
    )
    print(result.interface.describe())

    state = result.start_session(catalog)
    interaction = result.interface.interactions[0]
    print(f"\nPanning/zooming {interaction.source_vis_id} to ra in [148, 153], dec in [0, 4] ...")
    print("  SQL before:", state.current_sql(0))
    state.apply_pan_zoom(interaction.interaction_id, (148.0, 153.0), (0.0, 4.0))
    print("  SQL after: ", state.current_sql(0))
    print("  objects in view:", state.data_for_tree(0).row_count)

    output = Path(__file__).with_name("sdss_interface.html")
    save_interface_html(result.interface, output, data=state.refresh_all())
    print(f"\nWrote {output}")


if __name__ == "__main__":
    main()
