"""The Section 3.2 case study: Jane's COVID-19 travel-warning analysis.

Run with::

    python examples/covid_walkthrough.py

Replays the paper's walkthrough inside the headless notebook integration:

* Step 1 — overview + two detail date ranges → interface V1 (linked date
  brushing between the overview and detail charts),
* Step 2 — per-state breakdown → interface V2,
* Step 3 — region focus with joins and a correlated subquery (South and
  Northeast variants) → interface V3 with a structure-changing toggle and a
  region button pair,

then interacts with V3 the way the walkthrough describes and prints the
version history the extension keeps.
"""

from __future__ import annotations

from pathlib import Path

from repro import LARGE_SCREEN, PipelineConfig
from repro.datasets import covid_query_log, covid_region_variant_queries, load_covid_catalog
from repro.interface import InteractionType, WidgetType
from repro.notebook import NotebookSession, Pi2Extension


def main() -> None:
    catalog = load_covid_catalog()
    queries = covid_query_log() + [covid_region_variant_queries()[1]]

    session = NotebookSession(catalog=catalog)
    cells = session.add_cells(queries)
    session.run_all()

    extension = Pi2Extension(
        session=session,
        config=PipelineConfig(
            method="mcts", mcts_iterations=120, seed=1, screen=LARGE_SCREEN, name="covid analysis"
        ),
    )
    ids = [cell.cell_id for cell in cells]

    print("Step 1: overview + detail date ranges")
    v1 = extension.generate_interface(cell_ids=ids[:3])
    print(v1.result.interface.describe())

    print("\nStep 2: drill down to the state level")
    v2 = extension.generate_interface(cell_ids=ids[:4])
    print(v2.result.interface.describe())

    print("\nStep 3: focused region investigation (South vs Northeast)")
    v3 = extension.generate_interface(cell_ids=ids)
    print(v3.result.interface.describe())

    print("\nVersion history:")
    for summary in extension.version_summaries():
        print(" ", summary)

    # Interact with V3 the way Jane does.
    state = extension.start_session()
    interface = v3.result.interface

    brushes = [
        i for i in interface.interactions if i.interaction_type is InteractionType.BRUSH_X
    ]
    if brushes:
        brush = brushes[0]
        print(f"\nBrushing the overview to the holiday week via {brush.interaction_id} ...")
        state.apply_brush(brush.interaction_id, "2021-12-18", "2021-12-27")
        for tree_index in brush.tree_indices:
            print("  detail query now:", state.current_sql(tree_index))

    region_widgets = [
        w for w in interface.widgets if set(w.options or []) == {"South", "Northeast"}
    ]
    if region_widgets:
        widget = region_widgets[0]
        index_of_northeast = widget.options.index("Northeast")
        print(f"\nSwitching {widget.widget_id} to Northeast ...")
        state.set_widget(widget.widget_id, index_of_northeast)
        tree_index = widget.bindings[0].tree_index
        data = state.data_for_tree(tree_index)
        by_state: dict[str, int] = {}
        if "state" in data.columns and "cases" in data.columns:
            for row in data.to_dicts():
                by_state[row["state"]] = by_state.get(row["state"], 0) + row["cases"]
            worst = max(by_state, key=by_state.get)
            print(f"  Above-average Northeast states: {sorted(by_state)}")
            print(f"  Highest case load: {worst} -> recommend travellers avoid it")

    toggles = [w for w in interface.widgets if w.widget_type is WidgetType.TOGGLE]
    if toggles:
        toggle = toggles[0]
        tree_index = toggle.bindings[0].tree_index
        state.set_widget(toggle.widget_id, False)
        print(f"\nToggled {toggle.widget_id} off -> query structure without the subquery filter:")
        print(" ", state.current_sql(tree_index))

    output = Path(__file__).with_name("covid_v3_interface.html")
    extension.render_html(output)
    print(f"\nWrote {output}")


if __name__ == "__main__":
    main()
