"""S&P 500 sector analysis: the third demo dataset, end to end.

Run with::

    python examples/sp500_sector_analysis.py

An analyst studies index-level and sector-level price trends: an overview
average-close series, a zoomed date range, a per-sector breakdown and a
Technology-only variant.  The script generates the interface, exercises its
widgets, exports the Vega-Lite specification and saves the dataset to CSV so
it can be inspected or reused outside the library.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import PipelineConfig, generate_interface
from repro.datasets import load_sp500_catalog, sp500_query_log
from repro.engine.csvio import save_table
from repro.interface import interface_spec, save_interface_html


def main() -> None:
    catalog = load_sp500_catalog()
    queries = sp500_query_log()

    print("Input query log:")
    for index, sql in enumerate(queries, start=1):
        print(f"  Q{index}: {sql}")

    result = generate_interface(
        queries,
        catalog,
        PipelineConfig(method="mcts", mcts_iterations=80, seed=3, name="sp500 sectors"),
    )
    print("\nGenerated interface:")
    print(result.interface.describe())

    state = result.start_session(catalog)
    data = state.refresh_all()
    for vis_id, table in data.items():
        print(f"  {vis_id}: {table.row_count} rows x {len(table.columns)} columns")

    # Exercise the first discrete widget, if any (e.g. a sector switch).
    discrete = [w for w in result.interface.widgets if w.is_discrete()]
    if discrete:
        widget = discrete[0]
        print(f"\nSelecting option 1 of {widget.widget_id} ({widget.label}: {widget.options}) ...")
        state.set_widget(widget.widget_id, min(1, len(widget.options) - 1))
        tree_index = widget.bindings[0].tree_index
        print("  query now:", state.current_sql(tree_index))

    here = Path(__file__).parent
    spec_path = here / "sp500_interface.vl.json"
    spec_path.write_text(json.dumps(interface_spec(result.interface, data), indent=2, default=str))
    print(f"\nWrote {spec_path}")

    html_path = here / "sp500_interface.html"
    save_interface_html(result.interface, html_path, data=data)
    print(f"Wrote {html_path}")

    csv_path = save_table(catalog.table("prices"), here / "sp500_prices.csv")
    print(f"Wrote {csv_path} ({catalog.table('prices').row_count} rows)")


if __name__ == "__main__":
    main()
