"""Tests for exporting sessions and generated interfaces to .ipynb documents."""

from __future__ import annotations

import json

import pytest

from repro.notebook import NotebookSession, Pi2Extension, export_notebook, session_to_notebook
from repro.notebook.export import VEGALITE_MIME
from repro.pipeline import PipelineConfig


@pytest.fixture()
def session_with_versions(covid_catalog, covid_log):
    session = NotebookSession(catalog=covid_catalog)
    cells = session.add_cells(covid_log[:3])
    session.run_all()
    extension = Pi2Extension(session=session, config=PipelineConfig(method="greedy", name="covid"))
    extension.generate_interface(cell_ids=[cell.cell_id for cell in cells])
    return session, extension


class TestNotebookDocument:
    def test_document_structure(self, session_with_versions):
        session, extension = session_with_versions
        document = session_to_notebook(session, extension.history, title="COVID analysis")
        assert document["nbformat"] == 4
        cell_types = [cell["cell_type"] for cell in document["cells"]]
        assert cell_types[0] == "markdown"
        assert cell_types.count("code") >= len(session.cells) + 1

    def test_sql_cells_carry_source_and_results(self, session_with_versions):
        session, extension = session_with_versions
        document = session_to_notebook(session, extension.history)
        sql_cells = [
            cell
            for cell in document["cells"]
            if cell["cell_type"] == "code" and cell["source"].startswith("%%sql")
        ]
        assert len(sql_cells) == len(session.cells)
        assert all(cell["outputs"] for cell in sql_cells)
        assert session.cells[0].source in sql_cells[0]["source"]

    def test_interface_cell_embeds_vegalite(self, session_with_versions):
        session, extension = session_with_versions
        document = session_to_notebook(session, extension.history)
        rich_outputs = [
            output
            for cell in document["cells"]
            if cell["cell_type"] == "code"
            for output in cell["outputs"]
            if output["output_type"] == "display_data"
        ]
        assert rich_outputs
        spec = rich_outputs[0]["data"][VEGALITE_MIME]
        assert "vconcat" in spec

    def test_query_log_archived_in_markdown(self, session_with_versions):
        session, extension = session_with_versions
        document = session_to_notebook(session, extension.history)
        markdown = "\n".join(
            cell["source"] for cell in document["cells"] if cell["cell_type"] == "markdown"
        )
        for sql in extension.history.active.query_snapshot:
            assert sql in markdown

    def test_without_history(self, covid_catalog, covid_log):
        session = NotebookSession(catalog=covid_catalog)
        session.add_cells(covid_log[:2])
        document = session_to_notebook(session)
        assert document["metadata"]["pi2"]["generated_versions"] == 0

    def test_export_writes_valid_json(self, session_with_versions, tmp_path):
        session, extension = session_with_versions
        path = export_notebook(session, tmp_path / "analysis.ipynb", extension.history)
        assert path.exists()
        parsed = json.loads(path.read_text())
        assert parsed["nbformat"] == 4
        assert parsed["cells"]
