"""Property-based tests (hypothesis) for core invariants.

Three families of invariants:

* SQL front-end: printing then re-parsing any generated AST is the identity;
* Difftrees: merging any two generated queries yields a tree that covers both
  and whose default instantiation is a valid query;
* Engine: WHERE never adds rows, LIMIT bounds row counts, aggregates match a
  reference computation.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.difftree import collect_choice_nodes, covers, default_bindings, instantiate, merge_nodes
from repro.engine.catalog import Catalog
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.parser import parse_select
from repro.sql.printer import to_sql

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

# --------------------------------------------------------------------------- #
# Strategies: random small SELECT ASTs over the toy table t(p, a, b)
# --------------------------------------------------------------------------- #

COLUMNS = ("p", "a", "b")

column_refs = st.sampled_from(COLUMNS).map(lambda name: ColumnRef(name=name))
int_literals = st.integers(min_value=-5, max_value=5).map(Literal)
text_literals = st.sampled_from(["x", "y", "South"]).map(Literal)
literals = st.one_of(int_literals, text_literals)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw, depth: int = 0):
    if depth >= 2 or draw(st.booleans()):
        return BinaryOp(
            op=draw(comparison_ops), left=draw(column_refs), right=draw(int_literals)
        )
    return BinaryOp(
        op=draw(st.sampled_from(["AND", "OR"])),
        left=draw(predicates(depth=depth + 1)),
        right=draw(predicates(depth=depth + 1)),
    )


@st.composite
def select_queries(draw):
    group_column = draw(st.sampled_from(COLUMNS))
    aggregate = draw(st.booleans())
    items = [SelectItem(expr=ColumnRef(group_column))]
    group_by: list = []
    if aggregate:
        items.append(SelectItem(expr=FunctionCall(name="count", args=[Star()])))
        group_by = [ColumnRef(group_column)]
    else:
        extra = draw(st.sampled_from(COLUMNS))
        if extra != group_column:
            items.append(SelectItem(expr=ColumnRef(extra)))
    where = draw(st.one_of(st.none(), predicates()))
    return Select(
        select_items=items,
        from_clause=TableRef("t"),
        where=where,
        group_by=group_by,
    )


def make_toy_catalog() -> Catalog:
    catalog = Catalog()
    rows = [[p, a, b] for p in range(1, 4) for a in range(0, 3) for b in range(0, 3)]
    catalog.create_table("t", ["p", "a", "b"], rows)
    return catalog


TOY_CATALOG = make_toy_catalog()


# --------------------------------------------------------------------------- #
# SQL front-end invariants
# --------------------------------------------------------------------------- #


class TestSqlRoundTripProperties:
    @SETTINGS
    @given(select_queries())
    def test_print_parse_identity(self, query):
        assert parse_select(to_sql(query)) == query

    @SETTINGS
    @given(select_queries())
    def test_printing_is_idempotent(self, query):
        once = to_sql(query)
        assert to_sql(parse_select(once)) == once


# --------------------------------------------------------------------------- #
# Difftree invariants
# --------------------------------------------------------------------------- #


class TestDifftreeProperties:
    @SETTINGS
    @given(select_queries(), select_queries())
    def test_merge_covers_both_inputs(self, first, second):
        merged = merge_nodes(first, second)
        assert covers(merged, [first, second], limit=512)

    @SETTINGS
    @given(select_queries(), select_queries())
    def test_default_instantiation_is_valid_sql(self, first, second):
        merged = merge_nodes(first, second)
        query = instantiate(merged, default_bindings(merged))
        assert isinstance(query, Select)
        assert parse_select(to_sql(query)) == query

    @SETTINGS
    @given(select_queries())
    def test_self_merge_is_identity(self, query):
        merged = merge_nodes(query, query)
        assert merged == query
        assert collect_choice_nodes(merged) == []

    @SETTINGS
    @given(select_queries(), select_queries())
    def test_merge_executes_against_engine(self, first, second):
        merged = merge_nodes(first, second)
        query = instantiate(merged, default_bindings(merged))
        result = TOY_CATALOG.execute(query)
        assert result.columns


# --------------------------------------------------------------------------- #
# Engine invariants
# --------------------------------------------------------------------------- #


class TestEngineProperties:
    @SETTINGS
    @given(predicates())
    def test_where_never_adds_rows(self, predicate):
        base = TOY_CATALOG.execute("SELECT p, a, b FROM t")
        filtered = TOY_CATALOG.execute(
            Select(
                select_items=[SelectItem(expr=Star())],
                from_clause=TableRef("t"),
                where=predicate,
            )
        )
        assert filtered.row_count <= base.row_count

    @SETTINGS
    @given(st.integers(min_value=0, max_value=40))
    def test_limit_bounds_rows(self, limit):
        result = TOY_CATALOG.execute(f"SELECT p FROM t LIMIT {limit}")
        assert result.row_count == min(limit, 27)

    @SETTINGS
    @given(st.sampled_from(COLUMNS))
    def test_sum_and_count_match_reference(self, column):
        result = TOY_CATALOG.execute(f"SELECT sum({column}), count({column}) FROM t")
        values = TOY_CATALOG.table("t").column(column)
        assert result.rows[0][0] == sum(values)
        assert result.rows[0][1] == len(values)

    @SETTINGS
    @given(st.sampled_from(COLUMNS), predicates())
    def test_group_counts_sum_to_filtered_total(self, column, predicate):
        filtered = TOY_CATALOG.execute(
            Select(
                select_items=[SelectItem(expr=Star())],
                from_clause=TableRef("t"),
                where=predicate,
            )
        )
        grouped = TOY_CATALOG.execute(
            Select(
                select_items=[
                    SelectItem(expr=ColumnRef(column)),
                    SelectItem(expr=FunctionCall(name="count", args=[Star()]), alias="n"),
                ],
                from_clause=TableRef("t"),
                where=predicate,
                group_by=[ColumnRef(column)],
            )
        )
        assert sum(row[1] for row in grouped.rows) == filtered.row_count

    @SETTINGS
    @given(st.sampled_from(COLUMNS))
    def test_avg_matches_reference(self, column):
        result = TOY_CATALOG.execute(f"SELECT avg({column}) FROM t")
        values = TOY_CATALOG.table("t").column(column)
        assert math.isclose(result.rows[0][0], sum(values) / len(values))

    @SETTINGS
    @given(st.sampled_from(COLUMNS))
    def test_order_by_sorts(self, column):
        result = TOY_CATALOG.execute(f"SELECT {column} FROM t ORDER BY {column}")
        values = [row[0] for row in result.rows]
        assert values == sorted(values)
