"""Tests for the visitor/transformer infrastructure and the AST tree protocol."""

from __future__ import annotations

from repro.sql.ast_nodes import BinaryOp, ColumnRef, Literal, Select
from repro.sql.parser import parse_select
from repro.sql.printer import to_sql
from repro.sql.visitor import NodeTransformer, NodeVisitor, collect, count_nodes, transform, tree_depth


class TestTreeProtocol:
    def test_children_and_walk(self):
        query = parse_select("SELECT a, b FROM t WHERE a = 1")
        nodes = list(query.walk())
        assert nodes[0] is query
        assert any(isinstance(node, Literal) and node.value == 1 for node in nodes)

    def test_with_children_round_trip(self):
        expr = BinaryOp(op="+", left=Literal(1), right=Literal(2))
        rebuilt = expr.with_children([Literal(3), Literal(4)])
        assert rebuilt == BinaryOp(op="+", left=Literal(3), right=Literal(4))

    def test_with_children_wrong_arity_raises(self):
        expr = BinaryOp(op="+", left=Literal(1), right=Literal(2))
        try:
            expr.with_children([Literal(3)])
        except ValueError as exc:
            assert "Not enough" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_label_distinguishes_scalars(self):
        assert Literal(1).label() != Literal(2).label()
        assert ColumnRef("a").label() != ColumnRef("b").label()
        assert ColumnRef("a").label() == ColumnRef("a").label()

    def test_find_all(self):
        query = parse_select("SELECT a FROM t WHERE a = 1 AND b = 2")
        literals = query.find_all(Literal)
        assert sorted(lit.value for lit in literals) == [1, 2]

    def test_count_and_depth(self):
        query = parse_select("SELECT a FROM t")
        assert count_nodes(query) >= 4
        assert tree_depth(query) >= 3


class TestVisitors:
    def test_node_visitor_dispatch(self):
        class LiteralCollector(NodeVisitor):
            def __init__(self):
                self.values = []

            def visit_Literal(self, node):
                self.values.append(node.value)

        collector = LiteralCollector()
        collector.visit(parse_select("SELECT a FROM t WHERE a IN (1, 2, 3)"))
        assert collector.values == [1, 2, 3]

    def test_node_transformer_rewrites(self):
        class Incrementer(NodeTransformer):
            def visit_Literal(self, node):
                if isinstance(node.value, int):
                    return Literal(node.value + 1)
                return node

        query = parse_select("SELECT a FROM t WHERE a = 1")
        rewritten = Incrementer().transform(query)
        assert "a = 2" in to_sql(rewritten)

    def test_functional_transform(self):
        query = parse_select("SELECT a FROM t WHERE a = 1")

        def rename(node):
            if isinstance(node, ColumnRef) and node.name == "a":
                return ColumnRef(name="renamed")
            return None

        rewritten = transform(query, rename)
        assert isinstance(rewritten, Select)
        assert "renamed = 1" in to_sql(rewritten)
        # The original is untouched (transform is pure).
        assert "renamed" not in to_sql(query)

    def test_collect(self):
        query = parse_select("SELECT a, b FROM t")
        columns = collect(query, lambda node: isinstance(node, ColumnRef))
        assert {column.name for column in columns} == {"a", "b"}
