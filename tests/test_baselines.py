"""Tests for the Lux-like and Hex-like baseline re-implementations."""

from __future__ import annotations


from repro.baselines import HexBaseline, LuxBaseline
from repro.interface import ChartType
from repro.pipeline import PipelineConfig, generate_interface


class TestLuxBaseline:
    def test_one_chart_per_query(self, sdss_catalog, sdss_log):
        lux = LuxBaseline(catalog=sdss_catalog)
        recommendations = lux.recommend(sdss_log)
        assert len(recommendations) == len(sdss_log)
        assert lux.visualization_count() == len(sdss_log)

    def test_no_widgets_or_interactions(self, sdss_catalog, sdss_log):
        lux = LuxBaseline(catalog=sdss_catalog)
        lux.recommend(sdss_log)
        assert lux.widget_count() == 0
        assert lux.interaction_count() == 0
        assert lux.supports_interactive_analysis() is False

    def test_recommendations_carry_data(self, sdss_catalog, sdss_log):
        lux = LuxBaseline(catalog=sdss_catalog)
        recommendations = lux.recommend(sdss_log)
        for recommendation in recommendations:
            assert recommendation.data is not None
            assert recommendation.data.row_count > 0

    def test_similar_queries_get_similar_charts(self, sdss_catalog, sdss_log):
        """Figure 1(a): Lux produces one chart per query even when they differ
        only in the selected region."""
        lux = LuxBaseline(catalog=sdss_catalog)
        recommendations = lux.recommend(sdss_log)
        chart_types = {r.visualization.chart_type for r in recommendations}
        assert chart_types == {ChartType.SCATTER}

    def test_capability_flags(self):
        assert LuxBaseline.capabilities["vis_interactions"] is False
        assert LuxBaseline.capabilities["zero_effort"] is True


class TestHexBaseline:
    def test_parameterizes_literals(self, sdss_catalog, sdss_log):
        hex_baseline = HexBaseline(sdss_catalog)
        interface = hex_baseline.parameterize(sdss_log[0])
        # Figure 1(b): four sliders — ra low/high and dec low/high.
        assert interface.widget_count() == 4
        attributes = {param.attribute for param in interface.parameters}
        assert attributes == {"ra_low", "ra_high", "dec_low", "dec_high"}

    def test_manual_effort_counted(self, sdss_catalog, sdss_log):
        interface = HexBaseline(sdss_catalog).parameterize(sdss_log[0])
        assert interface.manual_steps == 2 * 4 + 1

    def test_no_vis_interactions(self, sdss_catalog, sdss_log):
        interface = HexBaseline(sdss_catalog).parameterize(sdss_log[0])
        assert interface.interaction_count() == 0

    def test_run_substitutes_parameters(self, sdss_catalog, sdss_log):
        hex_baseline = HexBaseline(sdss_catalog)
        interface = hex_baseline.parameterize(sdss_log[0])
        default_result = hex_baseline.run(interface)
        narrowed = hex_baseline.run(
            interface,
            {
                interface.parameters[0].name: 150.0,
                interface.parameters[1].name: 152.0,
            },
        )
        assert narrowed.row_count < default_result.row_count

    def test_capability_flags(self):
        assert HexBaseline.capabilities["widgets"] == "parameter"
        assert HexBaseline.capabilities["zero_effort"] is False


class TestComparisonAgainstPi2:
    def test_only_pi2_produces_vis_interactions(self, sdss_catalog, sdss_log):
        """The Table 1 / Figure 1 headline: PI2 alone generates visualization
        interactions with zero manual effort."""
        lux = LuxBaseline(catalog=sdss_catalog)
        lux.recommend(sdss_log)
        hex_interface = HexBaseline(sdss_catalog).parameterize(sdss_log[0])
        pi2 = generate_interface(
            sdss_log, sdss_catalog, PipelineConfig(method="mcts", mcts_iterations=60, seed=1)
        )
        assert lux.interaction_count() == 0
        assert hex_interface.interaction_count() == 0
        assert pi2.interface.interaction_count >= 1
        # and PI2 requires no manual configuration steps.
        assert hex_interface.manual_steps > 0
