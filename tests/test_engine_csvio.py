"""Tests for CSV import/export of tables."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.engine.csvio import load_table, save_table, table_from_csv, table_to_csv
from repro.engine.table import Table


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self):
        table = Table(
            "t",
            ["name", "count", "score", "flag", "missing"],
            [["alice", 3, 1.5, True, None], ["bob", 4, 2.0, False, None]],
        )
        text = table_to_csv(table)
        restored = table_from_csv("t", text)
        assert restored.column_names == table.column_names
        assert list(restored.rows()) == list(table.rows())

    def test_header_only(self):
        restored = table_from_csv("t", "a,b\n")
        assert restored.column_names == ["a", "b"]
        assert restored.row_count == 0

    def test_empty_csv_raises(self):
        with pytest.raises(DatasetError):
            table_from_csv("t", "")

    def test_type_sniffing(self):
        restored = table_from_csv("t", "a,b,c\n1,2.5,text\n")
        row = restored.row(0)
        assert row == (1, 2.5, "text")

    def test_file_round_trip(self, tmp_path):
        table = Table("prices", ["ticker", "close"], [["AAPL", 150.5], ["MSFT", 280.0]])
        path = save_table(table, tmp_path / "sub" / "prices.csv")
        assert path.exists()
        loaded = load_table("prices", path)
        assert list(loaded.rows()) == list(table.rows())

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_table("x", tmp_path / "missing.csv")

    def test_strings_with_commas_quoted(self):
        table = Table("t", ["text"], [["hello, world"]])
        restored = table_from_csv("t", table_to_csv(table))
        assert restored.row(0) == ("hello, world",)
