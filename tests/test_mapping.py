"""Tests for the V/M/L interface mapping."""

from __future__ import annotations


from repro.difftree import build_forest, forest_schema
from repro.difftree.transformations import applicable_transformations
from repro.interface import Channel, ChartType, InteractionType, LARGE_SCREEN, SMALL_SCREEN, WidgetType
from repro.mapping import (
    MappingConfig,
    MappingPolicy,
    map_forest_to_interface,
    map_forest_to_visualizations,
)


def factored_forest(queries, strategy="merged"):
    forest = build_forest(queries, strategy=strategy)
    for index, tree in enumerate(forest.trees):
        changed = True
        while changed:
            changed = False
            for transformation in applicable_transformations(tree):
                if transformation.rule == "factor_common_root":
                    tree = transformation(tree)
                    changed = True
                    break
        forest = forest.replace_tree(index, tree)
    return forest


class TestVisualizationMapping:
    def test_temporal_aggregation_maps_to_line(self, covid_catalog, covid_log):
        forest = build_forest(covid_log[:1], strategy="per_query")
        schema = forest_schema(forest, covid_catalog.schemas())
        vis = map_forest_to_visualizations(schema.profiles)[0]
        assert vis.chart_type is ChartType.LINE
        assert vis.field_for(Channel.X) == "date"
        assert vis.field_for(Channel.Y) == "total_cases"

    def test_categorical_aggregation_maps_to_bar(self, toy_catalog, fig2_queries):
        forest = build_forest(fig2_queries[2:], strategy="per_query")
        schema = forest_schema(forest, toy_catalog.schemas())
        vis = map_forest_to_visualizations(schema.profiles)[0]
        assert vis.chart_type is ChartType.BAR

    def test_two_quantitative_axes_map_to_scatter(self, sdss_catalog, sdss_log):
        forest = build_forest(sdss_log[:1], strategy="per_query")
        schema = forest_schema(forest, sdss_catalog.schemas())
        vis = map_forest_to_visualizations(schema.profiles)[0]
        assert vis.chart_type is ChartType.SCATTER

    def test_state_breakdown_gets_color_channel(self, covid_catalog, covid_log):
        forest = build_forest([covid_log[3]], strategy="per_query")
        schema = forest_schema(forest, covid_catalog.schemas())
        vis = map_forest_to_visualizations(schema.profiles)[0]
        assert vis.field_for(Channel.COLOR) == "state"

    def test_charts_numbered_sequentially(self, covid_catalog, covid_log):
        forest = build_forest(covid_log, strategy="per_query")
        schema = forest_schema(forest, covid_catalog.schemas())
        ids = [vis.vis_id for vis in map_forest_to_visualizations(schema.profiles)]
        assert ids == [f"G{i}" for i in range(1, len(covid_log) + 1)]


class TestInteractionMapping:
    def test_pan_zoom_for_sdss(self, sdss_catalog, sdss_log):
        forest = factored_forest(sdss_log)
        interface = map_forest_to_interface(forest, sdss_catalog.schemas(), MappingConfig())
        assert len(interface.interactions) == 1
        assert interface.interactions[0].interaction_type is InteractionType.PAN_ZOOM
        assert interface.widgets == []

    def test_brush_when_other_chart_shows_attribute(self, covid_catalog, covid_log):
        # Overview (Q1) in its own tree + merged detail tree (Q2a, Q2b).
        forest = build_forest(covid_log[:3], strategy="per_query")
        forest = forest.merge_trees(1, 2)
        forest = factored_forest_replace(forest, 1)
        interface = map_forest_to_interface(forest, covid_catalog.schemas(), MappingConfig())
        brushes = [
            i for i in interface.interactions if i.interaction_type is InteractionType.BRUSH_X
        ]
        assert brushes
        assert brushes[0].attribute == "date"
        assert brushes[0].is_linked()

    def test_range_widget_without_partner_chart(self, covid_catalog, covid_log):
        # Only the two detail queries: no other chart shows the date axis from
        # a different tree, so the range pair falls back to a widget.
        forest = factored_forest(covid_log[1:3])
        interface = map_forest_to_interface(forest, covid_catalog.schemas(), MappingConfig())
        assert not interface.interactions
        assert any(w.widget_type in (WidgetType.DATE_RANGE, WidgetType.RANGE_SLIDER) for w in interface.widgets)

    def test_click_select_for_figure5(self, toy_catalog, fig5_queries):
        forest = build_forest(fig5_queries, strategy="clustered")
        interface = map_forest_to_interface(forest, toy_catalog.schemas(), MappingConfig())
        clicks = [
            i for i in interface.interactions if i.interaction_type is InteractionType.CLICK_SELECT
        ]
        assert clicks, "literal choice on attribute shown in Q3's chart should map to a click"
        assert clicks[0].attribute == "a"

    def test_policy_can_disable_vis_interactions(self, sdss_catalog, sdss_log):
        forest = factored_forest(sdss_log)
        policy = MappingPolicy(prefer_vis_interactions=False, allow_pan_zoom=False, allow_click_select=False)
        interface = map_forest_to_interface(
            forest, sdss_catalog.schemas(), MappingConfig(policy=policy)
        )
        assert not interface.interactions
        assert interface.widgets

    def test_linked_choices_share_one_widget(self, covid_catalog, covid_v3_log):
        forest = build_forest(covid_v3_log[4:], strategy="merged")
        interface = map_forest_to_interface(forest, covid_catalog.schemas(), MappingConfig())
        region_widgets = [w for w in interface.widgets if set(w.options or []) == {"South", "Northeast"}]
        assert len(region_widgets) == 1
        assert len(region_widgets[0].bindings) >= 2

    def test_every_choice_bound(self, covid_catalog, covid_v3_log):
        forest = build_forest(covid_v3_log, strategy="clustered")
        interface = map_forest_to_interface(forest, covid_catalog.schemas(), MappingConfig())
        interface.validate()  # raises if a choice node has no component

    def test_opt_maps_to_toggle(self, toy_catalog):
        forest = build_forest(
            ["SELECT a FROM t", "SELECT a FROM t WHERE a = 1"], strategy="merged"
        )
        interface = map_forest_to_interface(forest, toy_catalog.schemas(), MappingConfig())
        assert any(w.widget_type is WidgetType.TOGGLE for w in interface.widgets)


def factored_forest_replace(forest, index):
    tree = forest.trees[index]
    changed = True
    while changed:
        changed = False
        for transformation in applicable_transformations(tree):
            if transformation.rule == "factor_common_root":
                tree = transformation(tree)
                changed = True
                break
    return forest.replace_tree(index, tree)


class TestLayoutMapping:
    def test_small_screen_produces_tabs(self, covid_catalog, covid_log):
        forest = build_forest(covid_log[:4], strategy="per_query")
        interface = map_forest_to_interface(
            forest, covid_catalog.schemas(), MappingConfig(screen=SMALL_SCREEN)
        )
        assert interface.layout is not None
        assert interface.layout.uses_tabs

    def test_large_screen_side_by_side(self, covid_catalog, covid_log):
        forest = build_forest(covid_log[:2], strategy="per_query")
        interface = map_forest_to_interface(
            forest, covid_catalog.schemas(), MappingConfig(screen=LARGE_SCREEN)
        )
        assert not interface.layout.uses_tabs
        assert interface.layout.charts_per_row() >= 2

    def test_overview_chart_ordered_first(self, covid_catalog, covid_log):
        forest = build_forest([covid_log[1], covid_log[0]], strategy="per_query")
        interface = map_forest_to_interface(forest, covid_catalog.schemas(), MappingConfig())
        first = interface.visualizations[0]
        # The unfiltered overview query (no WHERE) should be placed first even
        # though it was second in the log.
        assert first.tree_index == 1
