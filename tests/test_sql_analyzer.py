"""Tests for semantic analysis: result schemas, roles and query profiles."""

from __future__ import annotations

import pytest

from repro.errors import SqlAnalysisError
from repro.sql.analyzer import Analyzer
from repro.sql.parser import parse_select
from repro.sql.schema import AttributeRole, DataType, TableSchema


@pytest.fixture()
def analyzer() -> Analyzer:
    covid = TableSchema.from_pairs(
        "covid_cases",
        [("state", DataType.TEXT), ("date", DataType.DATE), ("cases", DataType.INTEGER)],
    )
    regions = TableSchema.from_pairs(
        "state_regions", [("state", DataType.TEXT), ("region", DataType.TEXT)]
    )
    return Analyzer({"covid_cases": covid, "state_regions": regions})


class TestResultSchema:
    def test_plain_projection(self, analyzer):
        schema = analyzer.result_schema(parse_select("SELECT state, cases FROM covid_cases"))
        assert schema.column_names() == ["state", "cases"]
        assert schema.column("cases").data_type is DataType.INTEGER

    def test_star_expansion(self, analyzer):
        schema = analyzer.result_schema(parse_select("SELECT * FROM covid_cases"))
        assert schema.column_names() == ["state", "date", "cases"]

    def test_aggregate_types(self, analyzer):
        schema = analyzer.result_schema(
            parse_select(
                "SELECT count(*) AS n, avg(cases) AS m, max(date) AS d FROM covid_cases"
            )
        )
        assert schema.column("n").data_type is DataType.INTEGER
        assert schema.column("m").data_type is DataType.FLOAT
        assert schema.column("d").data_type is DataType.DATE

    def test_alias_names_output(self, analyzer):
        schema = analyzer.result_schema(
            parse_select("SELECT sum(cases) AS total FROM covid_cases")
        )
        assert schema.column_names() == ["total"]

    def test_join_resolution(self, analyzer):
        schema = analyzer.result_schema(
            parse_select(
                "SELECT c.state, r.region FROM covid_cases c JOIN state_regions r ON c.state = r.state"
            )
        )
        assert schema.column_names() == ["state", "region"]

    def test_cte_schema(self, analyzer):
        schema = analyzer.result_schema(
            parse_select(
                "WITH recent AS (SELECT date, cases FROM covid_cases) SELECT date FROM recent"
            )
        )
        assert schema.column_names() == ["date"]

    def test_derived_table_schema(self, analyzer):
        schema = analyzer.result_schema(
            parse_select("SELECT x FROM (SELECT cases AS x FROM covid_cases) AS sub")
        )
        assert schema.column("x").data_type is DataType.INTEGER

    def test_arithmetic_type_promotion(self, analyzer):
        schema = analyzer.result_schema(
            parse_select("SELECT cases / 2 AS half FROM covid_cases")
        )
        assert schema.column("half").data_type is DataType.FLOAT

    def test_case_expression_type(self, analyzer):
        schema = analyzer.result_schema(
            parse_select(
                "SELECT CASE WHEN cases > 100 THEN 'high' ELSE 'low' END AS level FROM covid_cases"
            )
        )
        assert schema.column("level").data_type is DataType.TEXT


class TestRoles:
    def test_temporal_role_for_dates(self, analyzer):
        schema = analyzer.result_schema(parse_select("SELECT date FROM covid_cases"))
        assert schema.column("date").resolved_role() is AttributeRole.TEMPORAL

    def test_quantitative_role_for_aggregates(self, analyzer):
        schema = analyzer.result_schema(parse_select("SELECT sum(cases) AS s FROM covid_cases"))
        assert schema.column("s").resolved_role() is AttributeRole.QUANTITATIVE

    def test_nominal_role_for_text(self, analyzer):
        schema = analyzer.result_schema(parse_select("SELECT state FROM covid_cases"))
        assert schema.column("state").resolved_role() is AttributeRole.NOMINAL


class TestProfiles:
    def test_aggregation_profile(self, analyzer):
        profile = analyzer.analyze(
            parse_select(
                "SELECT state, sum(cases) AS total FROM covid_cases "
                "WHERE date > '2021-12-01' GROUP BY state"
            )
        )
        assert profile.is_aggregation is True
        assert profile.group_by_columns == ("state",)
        assert profile.aggregate_columns == ("total",)
        assert "date" in profile.filter_columns
        assert profile.measure_columns == ("total",)
        assert profile.dimension_columns == ("state",)

    def test_join_and_subquery_flags(self, analyzer):
        profile = analyzer.analyze(
            parse_select(
                "SELECT c.state FROM covid_cases c JOIN state_regions r ON c.state = r.state "
                "WHERE c.cases > (SELECT avg(cases) FROM covid_cases)"
            )
        )
        assert profile.has_join is True
        assert profile.has_subquery is True
        assert set(profile.source_tables) == {"covid_cases", "state_regions"}

    def test_plain_query_flags(self, analyzer):
        profile = analyzer.analyze(parse_select("SELECT state FROM covid_cases"))
        assert profile.is_aggregation is False
        assert profile.has_join is False
        assert profile.has_subquery is False


class TestErrors:
    def test_unknown_table(self, analyzer):
        with pytest.raises(SqlAnalysisError):
            analyzer.result_schema(parse_select("SELECT a FROM nope"))

    def test_unknown_column(self, analyzer):
        with pytest.raises(SqlAnalysisError):
            analyzer.result_schema(parse_select("SELECT nope FROM covid_cases"))

    def test_ambiguous_column(self, analyzer):
        with pytest.raises(SqlAnalysisError):
            analyzer.result_schema(
                parse_select(
                    "SELECT state FROM covid_cases c JOIN state_regions r ON c.state = r.state"
                )
            )

    def test_correlated_subquery_resolves_outer_column(self, analyzer):
        # Should not raise: c.state is resolved through the outer scope.
        profile = analyzer.analyze(
            parse_select(
                "SELECT c.state FROM covid_cases c WHERE EXISTS "
                "(SELECT 1 FROM state_regions r WHERE r.state = c.state)"
            )
        )
        assert profile.has_subquery is True

    def test_cte_column_count_mismatch(self, analyzer):
        with pytest.raises(SqlAnalysisError):
            analyzer.result_schema(
                parse_select(
                    "WITH x (a, b) AS (SELECT state FROM covid_cases) SELECT a FROM x"
                )
            )
