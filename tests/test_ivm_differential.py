"""Differential harness for incremental view maintenance: fold vs recompute.

A seeded generator interleaves catalog mutations (copy-on-write append
batches, occasional table replacement, in-place appends, cache clears) with
queries drawn from a fixed pool of maintainable and non-maintainable shapes.
Every query runs twice at the same catalog version:

* through the default warm path (cache + delta folders — ``engine/ivm.py``),
* through ``ExecOptions(use_cache=False)`` (cold recompute, the oracle),

and the two results must be bag-equal (floats rounded).  The pool repeats
queries across versions on purpose: that is what drives probes through the
fold path instead of cold stores.

Seed policy mirrors ``test_differential_sqlite.py``: the interleaving is
seeded from ``IVM_DIFFERENTIAL_SEED`` (default 20260807) and runs
``DIFFERENTIAL_QUERY_COUNT`` steps (default 200; the nightly CI cron raises
it).  On mismatch the harness delta-debugs the failing *interleaving* —
dropping mutation/query steps while the mismatch persists — and writes the
original + shrunk scenario to ``tests/artifacts/differential/``, which CI
uploads as the failing corpus.  Reproduce locally with::

    IVM_DIFFERENTIAL_SEED=<seed> PYTHONPATH=src python -m pytest tests/test_ivm_differential.py
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import Any

import pytest

from repro.engine.catalog import Catalog
from repro.engine.options import ExecOptions

SEED = int(os.environ.get("IVM_DIFFERENTIAL_SEED", "20260807"))
STEP_COUNT = int(os.environ.get("DIFFERENTIAL_QUERY_COUNT", "200"))
ARTIFACT_DIR = Path(__file__).parent / "artifacts" / "differential"

COLD = ExecOptions(use_cache=False)

TABLE = "metrics"
COLUMNS = ["g", "h", "v", "w"]

#: One scenario step: ("append", rows) | ("query", sql) | ("replace", rows)
#: | ("inplace", row) | ("clear",).
Op = tuple


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #


def _row(rng: random.Random) -> list[Any]:
    return [
        rng.choice(["a", "b", "c", "d", None]),
        rng.choice(["x", "y"]),
        None if rng.random() < 0.2 else rng.randrange(0, 50),
        None if rng.random() < 0.2 else round(rng.uniform(-3.0, 3.0), 3),
    ]


def _rows(rng: random.Random, count: int) -> list[list[Any]]:
    return [_row(rng) for _ in range(count)]


def _predicate(rng: random.Random) -> str:
    choices = [
        f"v > {rng.randrange(0, 40)}",
        f"v < {rng.randrange(10, 50)}",
        f"g = '{rng.choice(['a', 'b', 'c'])}'",
        f"w > {round(rng.uniform(-2.0, 2.0), 2)}",
        "v IS NOT NULL",
    ]
    predicate = rng.choice(choices)
    if rng.random() < 0.3:
        predicate += f" AND {rng.choice(choices)}"
    return predicate


def build_query_pool(rng: random.Random) -> list[str]:
    """A fixed pool of queries the interleaving draws from (repeats drive folds)."""
    aggregates = [
        "count(*)", "count(v)", "sum(v)", "avg(v)", "min(v)", "max(v)",
        "median(v)", "stddev(v)", "count(DISTINCT g)",
    ]
    pool: list[str] = []
    for _ in range(8):  # grouped aggregates (maintainable)
        agg = rng.choice(aggregates)
        keys = rng.choice(["g", "h", "g, h"])
        sql = f"SELECT {keys}, {agg} AS m FROM {TABLE} GROUP BY {keys}"
        if rng.random() < 0.4:
            sql = (
                f"SELECT {keys}, {agg} AS m FROM {TABLE} "
                f"WHERE {_predicate(rng)} GROUP BY {keys}"
            )
        pool.append(sql)
    for _ in range(4):  # global aggregates (maintainable)
        agg = rng.choice(aggregates)
        where = f" WHERE {_predicate(rng)}" if rng.random() < 0.5 else ""
        pool.append(f"SELECT {agg} AS m FROM {TABLE}{where}")
    for _ in range(6):  # scan/filter splices (maintainable)
        items = rng.choice(["*", "g, v", "g, h, v, w", "v, w"])
        where = f" WHERE {_predicate(rng)}" if rng.random() < 0.7 else ""
        pool.append(f"SELECT {items} FROM {TABLE}{where}")
    # Non-maintainable shapes: the warm path must stay correct through plain
    # version-keyed invalidation while folders churn around them.
    pool.append(f"SELECT g, v FROM {TABLE} WHERE v IS NOT NULL ORDER BY v, g LIMIT 7")
    pool.append(f"SELECT DISTINCT g FROM {TABLE}")
    pool.append(f"SELECT g, count(*) AS n FROM {TABLE} GROUP BY g HAVING count(*) > 2")
    return pool


def build_scenario(rng: random.Random, steps: int) -> list[Op]:
    pool = build_query_pool(rng)
    ops: list[Op] = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.30:
            ops.append(("append", _rows(rng, rng.randrange(0, 5))))
        elif roll < 0.32:
            ops.append(("replace", _rows(rng, rng.randrange(1, 6))))
        elif roll < 0.35:
            ops.append(("inplace", _row(rng)))
        elif roll < 0.37:
            ops.append(("clear",))
        else:
            ops.append(("query", rng.choice(pool)))
    return ops


# --------------------------------------------------------------------------- #
# Execution + checking
# --------------------------------------------------------------------------- #


def normalize_rows(rows: list[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    """Order-insensitive, float-tolerant canonical form of a result."""

    def norm(value: Any) -> Any:
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, (int, float)):
            return round(float(value), 6)
        return value

    return sorted((tuple(norm(v) for v in row) for row in rows), key=repr)


def fresh_catalog(rng_seed: int) -> Catalog:
    rng = random.Random(rng_seed)
    catalog = Catalog()
    catalog.create_table(TABLE, COLUMNS, _rows(rng, 30))
    return catalog


def check_step(catalog: Catalog, sql: str) -> str | None:
    """Run one query warm and cold at the same version; describe any mismatch."""
    try:
        warm = catalog.execute(sql)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
        return f"warm path raised {type(exc).__name__}: {exc}"
    try:
        cold = catalog.execute(sql, COLD)
    except Exception as exc:  # noqa: BLE001
        return f"cold recompute raised {type(exc).__name__}: {exc}"
    if warm.columns != cold.columns:
        return f"columns disagree: warm={warm.columns} cold={cold.columns}"
    if normalize_rows(warm.rows) != normalize_rows(cold.rows):
        return (
            "fold/recompute disagree: "
            f"warm={normalize_rows(warm.rows)[:4]} cold={normalize_rows(cold.rows)[:4]}"
        )
    return None


def apply_op(catalog: Catalog, op: Op) -> str | None:
    """Apply one scenario step; return a mismatch description for query steps."""
    kind = op[0]
    if kind == "append":
        catalog.append_rows(TABLE, op[1])
    elif kind == "replace":
        catalog.create_table(TABLE, COLUMNS, op[1], replace=True)
    elif kind == "inplace":
        catalog.table(TABLE).append(op[1])
    elif kind == "clear":
        catalog.clear_caches()
    else:
        return check_step(catalog, op[1])
    return None


def replay(ops: list[Op]) -> tuple[int, str] | None:
    """Replay a scenario on a fresh catalog; (step index, reason) on mismatch."""
    catalog = fresh_catalog(SEED)
    for index, op in enumerate(ops):
        reason = apply_op(catalog, op)
        if reason is not None:
            return index, reason
    return None


# --------------------------------------------------------------------------- #
# Scenario shrinking (delta-debugging the interleaving)
# --------------------------------------------------------------------------- #


def failure_category(reason: str | None) -> str | None:
    return None if reason is None else reason.split(":", 1)[0]


def shrink_scenario(ops: list[Op], category: str) -> list[Op]:
    """Shrink a failing interleaving while the same failure class persists."""

    def still_fails(candidate: list[Op]) -> bool:
        outcome = replay(candidate)
        return outcome is not None and failure_category(outcome[1]) == category

    # Phase 1: smallest failing suffix of mutations + the tail (cheap, O(log n)
    # replays would not preserve failures that need early appends, so walk
    # linearly from the front instead).
    start = 0
    while start < len(ops) - 1 and still_fails(ops[start + 1 :]):
        start += 1
    ops = ops[start:]
    # Phase 2: greedy single-step removal to a fixpoint (bounded: shrinking
    # only runs on red, and phase 1 already cut the scenario down).
    changed = True
    while changed and len(ops) <= 64:
        changed = False
        for index in range(len(ops) - 1, -1, -1):
            candidate = ops[:index] + ops[index + 1 :]
            if candidate and still_fails(candidate):
                ops = candidate
                changed = True
                break
    return ops


def _format_op(op: Op) -> str:
    if op[0] == "query":
        return f"QUERY {op[1]};"
    if op[0] in ("append", "replace"):
        return f"{op[0].upper()} {op[1]!r};"
    return f"{op[0].upper()};"


def _write_artifact(seed: int, ops: list[Op], shrunk: list[Op], index: int, reason: str) -> Path:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"ivm_failure_seed{seed}_step{index}.txt"
    path.write_text(
        "-- ivm differential harness failure\n"
        f"-- seed: {seed}  failing step: {index}\n"
        f"-- reason: {reason}\n"
        f"-- shrunk scenario ({len(shrunk)} steps):\n"
        + "\n".join(_format_op(op) for op in shrunk)
        + f"\n-- original scenario ({len(ops)} steps):\n"
        + "\n".join(_format_op(op) for op in ops)
        + "\n"
    )
    return path


# --------------------------------------------------------------------------- #
# The tests
# --------------------------------------------------------------------------- #


def test_interleaved_folds_match_recompute():
    rng = random.Random(SEED)
    ops = build_scenario(rng, STEP_COUNT)
    outcome = replay(ops)
    if outcome is not None:
        index, reason = outcome
        shrunk = shrink_scenario(ops[: index + 1], failure_category(reason))
        path = _write_artifact(SEED, ops[: index + 1], shrunk, index, reason)
        pytest.fail(
            f"ivm differential failure at step {index} (seed {SEED}): {reason}\n"
            f"shrunk to {len(shrunk)} steps -> {path}\n"
            f"reproduce: IVM_DIFFERENTIAL_SEED={SEED} PYTHONPATH=src "
            "python -m pytest tests/test_ivm_differential.py"
        )


def test_harness_actually_exercises_the_fold_path():
    """Sanity: the scenario distribution drives real folds, not just misses."""
    catalog = fresh_catalog(SEED)
    sql = f"SELECT g, count(*) AS n FROM {TABLE} GROUP BY g"
    rng = random.Random(SEED ^ 0xF01D)
    catalog.execute(sql)
    for _ in range(5):
        catalog.append_rows(TABLE, _rows(rng, 3))
        assert check_step(catalog, sql) is None
    assert catalog.cache_stats()["ivm_folds"] == 5
    assert catalog.cache_stats()["ivm_fallbacks"] == 0


def test_shrinker_reduces_an_injected_failure():
    """The delta-debugger itself: a synthetic always-failing step shrinks to
    a minimal scenario that still contains it."""
    rng = random.Random(SEED ^ 0x5EED)
    ops = build_scenario(rng, 30)
    # A query against a table that never exists fails identically on every
    # replay — the shrinker should strip everything else away.
    ops.append(("query", "SELECT missing FROM nowhere"))
    outcome = replay(ops)
    assert outcome is not None
    index, reason = outcome
    assert index == len(ops) - 1
    shrunk = shrink_scenario(ops, failure_category(reason))
    assert len(shrunk) == 1
    assert shrunk[0][0] == "query"
