"""Tests for the notebook session, versioning and the PI2 extension facade."""

from __future__ import annotations

import pytest

from repro.errors import NotebookError
from repro.notebook import NotebookSession, Pi2Extension, VersionHistory
from repro.pipeline import PipelineConfig


@pytest.fixture()
def session(covid_catalog, covid_log):
    session = NotebookSession(catalog=covid_catalog)
    session.add_cells(covid_log)
    return session


@pytest.fixture()
def extension(session):
    return Pi2Extension(
        session=session, config=PipelineConfig(method="greedy", name="covid analysis")
    )


class TestCells:
    def test_empty_cell_rejected(self, session):
        with pytest.raises(NotebookError):
            session.add_cell("   ")

    def test_edit_archives_history(self, session):
        cell = session.cells[0]
        original = cell.source
        session.edit_cell(cell.cell_id, "SELECT state FROM covid_cases")
        assert cell.history == [original]
        # Editing to the same text is a no-op.
        session.edit_cell(cell.cell_id, "SELECT state FROM covid_cases")
        assert len(cell.history) == 1

    def test_toggle_and_snapshot(self, session):
        cell = session.cells[0]
        assert cell.toggle() is True
        snapshot = cell.snapshot()
        assert snapshot["selected"] is True
        assert snapshot["source"] == cell.source


class TestSession:
    def test_run_cell_executes_and_marks(self, session):
        cell = session.cells[0]
        result = session.run_cell(cell.cell_id)
        assert result.row_count > 0
        assert cell.execution_count == 1
        assert cell.last_result is result

    def test_run_all(self, session):
        results = session.run_all()
        assert len(results) == len(session)

    def test_selection(self, session):
        ids = [cell.cell_id for cell in session.cells[:3]]
        session.select_cells(ids)
        assert [cell.source for cell in session.selected_cells()] == session.selected_queries()
        assert len(session.selected_queries()) == 3

    def test_select_unknown_cell(self, session):
        with pytest.raises(NotebookError):
            session.select_cells(["nope"])

    def test_insert_and_remove(self, session):
        cell = session.insert_cell(0, "SELECT 1")
        assert session.cells[0] is cell
        session.remove_cell(cell.cell_id)
        with pytest.raises(NotebookError):
            session.cell(cell.cell_id)


class TestExtension:
    def test_generation_requires_selection(self, extension):
        with pytest.raises(NotebookError):
            extension.generate_interface()

    def test_walkthrough_versions(self, extension, session):
        ids = [cell.cell_id for cell in session.cells]
        # V1: overview + two detail ranges (walkthrough step 1).
        v1 = extension.generate_interface(cell_ids=ids[:3])
        # V2: add the per-state breakdown (step 2).
        v2 = extension.generate_interface(cell_ids=ids[:4])
        # V3: add the region-focused query (step 3).
        v3 = extension.generate_interface(cell_ids=ids)
        assert [v.label for v in extension.history.versions] == ["V1", "V2", "V3"]
        assert len(v1.query_snapshot) == 3
        assert len(v2.query_snapshot) == 4
        assert len(v3.query_snapshot) == 5
        assert extension.active_version is v3
        assert v3.parent_version == v2.version_id

    def test_query_log_snapshot_immutable_under_edits(self, extension, session):
        ids = [cell.cell_id for cell in session.cells[:3]]
        version = extension.generate_interface(cell_ids=ids)
        original_snapshot = list(version.query_snapshot)
        session.edit_cell(ids[0], "SELECT state, cases FROM covid_cases")
        assert extension.query_log() == original_snapshot

    def test_switch_and_revert(self, extension, session):
        ids = [cell.cell_id for cell in session.cells]
        extension.generate_interface(cell_ids=ids[:3])
        extension.generate_interface(cell_ids=ids[:4])
        switched = extension.switch_version("V1")
        assert extension.active_version is switched
        extension.revert_to_version("V1")
        assert len(extension.history) == 1

    def test_unknown_version(self, extension, session):
        with pytest.raises(NotebookError):
            extension.switch_version("V9")

    def test_version_summaries(self, extension, session):
        ids = [cell.cell_id for cell in session.cells[:3]]
        extension.generate_interface(cell_ids=ids)
        summaries = extension.version_summaries()
        assert summaries[0]["version"] == "V1"
        assert summaries[0]["visualizations"] >= 1

    def test_start_session_and_render(self, extension, session, tmp_path):
        ids = [cell.cell_id for cell in session.cells[:3]]
        extension.generate_interface(cell_ids=ids)
        state = extension.start_session()
        assert state.refresh_all()
        path = extension.render_html(tmp_path / "v1.html")
        assert path.exists()
        content = path.read_text()
        assert "Query Log" in content

    def test_empty_history_access(self):
        history = VersionHistory()
        with pytest.raises(NotebookError):
            _ = history.active
