"""Tests for Difftree schema extraction (choice contexts and tree profiles)."""

from __future__ import annotations


from repro.difftree import (
    build_forest,
    choice_contexts,
    forest_schema,
    merge_nodes,
    tree_profile,
)
from repro.difftree.transformations import applicable_transformations
from repro.sql.parser import parse_select
from repro.sql.schema import AttributeRole


class TestChoiceContexts:
    def test_no_choices_for_plain_query(self):
        assert choice_contexts(parse_select("SELECT a FROM t")) == []

    def test_equality_literal_context(self):
        merged = merge_nodes(
            parse_select("SELECT a FROM t WHERE region = 'South'"),
            parse_select("SELECT a FROM t WHERE region = 'Northeast'"),
        )
        context = choice_contexts(merged)[0]
        assert context.kind == "any"
        assert context.clause == "where"
        assert context.target_attribute == "region"
        assert context.comparison_op == "="
        assert context.alternative_kind == "text_literal"

    def test_between_range_pair(self):
        merged = merge_nodes(
            parse_select("SELECT a FROM t WHERE x BETWEEN 1 AND 10"),
            parse_select("SELECT a FROM t WHERE x BETWEEN 2 AND 20"),
        )
        # The both-operands-differ rule keeps the BETWEEN as a predicate ANY;
        # factor it to expose the low/high literal choices.
        for transformation in applicable_transformations(merged):
            if transformation.rule == "factor_common_root":
                merged = transformation(merged)
        contexts = choice_contexts(merged)
        positions = {context.range_position for context in contexts}
        assert positions == {"low", "high"}
        partners = {context.range_partner for context in contexts}
        assert None not in partners

    def test_opt_subquery_context(self):
        merged = merge_nodes(
            parse_select("SELECT a FROM t WHERE a IN (SELECT a FROM u)"),
            parse_select("SELECT a FROM t"),
        )
        context = choice_contexts(merged)[0]
        assert context.kind == "opt"
        assert context.alternative_kind == "subquery"
        assert context.wraps_subquery is True

    def test_select_clause_context(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="merged")
        contexts = choice_contexts(forest.trees[0])
        clauses = {context.clause for context in contexts}
        assert "select" in clauses

    def test_group_by_clause_context(self):
        merged = merge_nodes(
            parse_select("SELECT a, count(*) FROM t GROUP BY a"),
            parse_select("SELECT b, count(*) FROM t GROUP BY b"),
        )
        clauses = {context.clause for context in choice_contexts(merged)}
        assert "group_by" in clauses

    def test_in_list_context(self):
        merged = merge_nodes(
            parse_select("SELECT a FROM t WHERE region IN ('South')"),
            parse_select("SELECT a FROM t WHERE region IN ('Northeast')"),
        )
        context = choice_contexts(merged)[0]
        assert context.comparison_op == "in"
        assert context.target_attribute == "region"


class TestTreeProfiles:
    def test_profile_of_covid_overview(self, covid_catalog, covid_log):
        forest = build_forest(covid_log[:1], strategy="per_query")
        profile = tree_profile(forest.trees[0], 0, covid_catalog.schemas())
        schema = profile.query_profile.result_schema
        assert schema.column_names() == ["date", "total_cases"]
        assert schema.column("date").resolved_role() is AttributeRole.TEMPORAL
        assert schema.column("total_cases").resolved_role() is AttributeRole.QUANTITATIVE
        assert profile.choices == []

    def test_forest_schema_indexes_profiles(self, covid_catalog, covid_log):
        forest = build_forest(covid_log, strategy="clustered")
        schema = forest_schema(forest, covid_catalog.schemas())
        assert len(schema.profiles) == forest.tree_count
        for index, profile in enumerate(schema.profiles):
            assert profile.tree_index == index

    def test_profile_cache_reuse(self, covid_catalog, covid_log):
        forest = build_forest(covid_log, strategy="clustered")
        cache: dict = {}
        first = forest_schema(forest, covid_catalog.schemas(), profile_cache=cache)
        second = forest_schema(forest, covid_catalog.schemas(), profile_cache=cache)
        assert len(cache) == forest.tree_count
        assert [p.default_query for p in first.profiles] == [
            p.default_query for p in second.profiles
        ]

    def test_range_pairs_accessor(self, sdss_log, sdss_catalog):
        forest = build_forest(sdss_log, strategy="merged")
        tree = forest.trees[0]
        for transformation in applicable_transformations(tree):
            if transformation.rule == "factor_common_root":
                tree = transformation(tree)
        profile = tree_profile(tree, 0, sdss_catalog.schemas())
        pairs = profile.range_pairs()
        assert len(pairs) == 2
        for low, high in pairs:
            assert low.range_position == "low"
            assert high.range_position == "high"
            assert low.target_attribute == high.target_attribute
