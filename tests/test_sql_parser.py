"""Unit tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.errors import SqlParseError
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Literal,
    ScalarSubquery,
    SetOperation,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.parser import parse, parse_many, parse_select


class TestSelectBasics:
    def test_simple_select(self):
        query = parse_select("SELECT a, b FROM t")
        assert [item.output_name() for item in query.select_items] == ["a", "b"]
        assert isinstance(query.from_clause, TableRef)
        assert query.from_clause.name == "t"

    def test_select_star(self):
        query = parse_select("SELECT * FROM t")
        assert isinstance(query.select_items[0].expr, Star)

    def test_select_qualified_star(self):
        query = parse_select("SELECT t.* FROM t")
        star = query.select_items[0].expr
        assert isinstance(star, Star)
        assert star.table == "t"

    def test_aliases_with_and_without_as(self):
        query = parse_select("SELECT a AS x, b y FROM t")
        assert query.select_items[0].alias == "x"
        assert query.select_items[1].alias == "y"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct is True
        assert parse_select("SELECT ALL a FROM t").distinct is False

    def test_select_without_from(self):
        query = parse_select("SELECT 1 + 2 AS three")
        assert query.from_clause is None

    def test_limit_and_offset(self):
        query = parse_select("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert query.limit == 10
        assert query.offset == 5

    def test_order_by_directions(self):
        query = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert query.order_by[0].descending is True
        assert query.order_by[1].descending is False

    def test_group_by_and_having(self):
        query = parse_select("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2")
        assert len(query.group_by) == 1
        assert isinstance(query.having, BinaryOp)


class TestExpressions:
    def test_arithmetic_precedence(self):
        query = parse_select("SELECT 1 + 2 * 3")
        expr = query.select_items[0].expr
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_and_or_precedence(self):
        query = parse_select("SELECT a FROM t WHERE a = 1 OR b = 2 AND p = 3")
        assert isinstance(query.where, BinaryOp)
        assert query.where.op == "OR"
        assert isinstance(query.where.right, BinaryOp)
        assert query.where.right.op == "AND"

    def test_not(self):
        query = parse_select("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(query.where, UnaryOp)
        assert query.where.op == "NOT"

    def test_negative_literal_folding(self):
        query = parse_select("SELECT a FROM t WHERE a > -2.5")
        assert isinstance(query.where.right, Literal)
        assert query.where.right.value == -2.5

    def test_between(self):
        query = parse_select("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(query.where, BetweenOp)

    def test_not_between(self):
        query = parse_select("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10")
        assert query.where.negated is True

    def test_in_list(self):
        query = parse_select("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(query.where, InList)
        assert len(query.where.items) == 3

    def test_in_subquery(self):
        query = parse_select("SELECT a FROM t WHERE a IN (SELECT a FROM u)")
        assert isinstance(query.where, InSubquery)

    def test_exists(self):
        query = parse_select("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(query.where, Exists)

    def test_scalar_subquery(self):
        query = parse_select("SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)")
        assert isinstance(query.where.right, ScalarSubquery)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_select("SELECT a FROM t WHERE a IS NULL").where, IsNull)
        assert parse_select("SELECT a FROM t WHERE a IS NOT NULL").where.negated is True

    def test_like(self):
        query = parse_select("SELECT a FROM t WHERE name LIKE 'ab%'")
        assert query.where.op == "LIKE"

    def test_case_expression(self):
        query = parse_select("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
        case = query.select_items[0].expr
        assert isinstance(case, Case)
        assert len(case.whens) == 1
        assert isinstance(case.else_result, Literal)

    def test_cast(self):
        query = parse_select("SELECT CAST(a AS float) FROM t")
        assert isinstance(query.select_items[0].expr, Cast)

    def test_function_call_with_distinct(self):
        query = parse_select("SELECT count(DISTINCT a) FROM t")
        call = query.select_items[0].expr
        assert isinstance(call, FunctionCall)
        assert call.distinct is True

    def test_count_star(self):
        query = parse_select("SELECT count(*) FROM t")
        call = query.select_items[0].expr
        assert isinstance(call.args[0], Star)

    def test_boolean_and_null_literals(self):
        query = parse_select("SELECT TRUE, FALSE, NULL")
        values = [item.expr.value for item in query.select_items]
        assert values == [True, False, None]

    def test_qualified_column(self):
        query = parse_select("SELECT t.a FROM t")
        column = query.select_items[0].expr
        assert isinstance(column, ColumnRef)
        assert column.table == "t"
        assert column.qualified_name == "t.a"


class TestFromClause:
    def test_inner_join_with_on(self):
        query = parse_select("SELECT * FROM a JOIN b ON a.id = b.id")
        assert isinstance(query.from_clause, Join)
        assert query.from_clause.join_type == "INNER"

    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT * FROM a LEFT JOIN b ON a.id = b.id", "LEFT"),
            ("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id", "LEFT"),
            ("SELECT * FROM a RIGHT JOIN b ON a.id = b.id", "RIGHT"),
            ("SELECT * FROM a FULL OUTER JOIN b ON a.id = b.id", "FULL"),
            ("SELECT * FROM a CROSS JOIN b", "CROSS"),
        ],
    )
    def test_join_types(self, sql, expected):
        assert parse_select(sql).from_clause.join_type == expected

    def test_comma_join_is_cross(self):
        query = parse_select("SELECT * FROM a, b")
        assert query.from_clause.join_type == "CROSS"

    def test_join_using(self):
        query = parse_select("SELECT * FROM a JOIN b USING (id, name)")
        assert query.from_clause.using == ["id", "name"]

    def test_derived_table(self):
        query = parse_select("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        assert isinstance(query.from_clause, SubqueryRef)
        assert query.from_clause.alias == "sub"

    def test_table_alias(self):
        query = parse_select("SELECT c.a FROM t AS c")
        assert query.from_clause.binding_name == "c"


class TestCtesAndSetOps:
    def test_with_clause(self):
        query = parse_select("WITH recent AS (SELECT a FROM t) SELECT a FROM recent")
        assert len(query.ctes) == 1
        assert query.ctes[0].name == "recent"

    def test_union(self):
        node = parse("SELECT a FROM t UNION SELECT a FROM u")
        assert isinstance(node, SetOperation)
        assert node.op == "UNION"
        assert node.all is False

    def test_union_all(self):
        node = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert node.all is True

    def test_parse_many(self):
        statements = parse_many("SELECT 1; SELECT 2;")
        assert len(statements) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t trailing garbage junk (",
            "WITH x AS SELECT 1 SELECT 2",
        ],
    )
    def test_malformed_queries_raise(self, sql):
        with pytest.raises(SqlParseError):
            parse(sql)

    def test_parse_select_rejects_set_operation(self):
        with pytest.raises(SqlParseError):
            parse_select("SELECT a FROM t UNION SELECT a FROM u")

    def test_case_requires_when(self):
        with pytest.raises(SqlParseError):
            parse("SELECT CASE END FROM t")
