"""Tests for the columnar storage layer (Column, null masks, incremental stats).

The storage contract under test (see docs/ENGINE.md "Storage"):

* tables are column-major; ``rows()``/``to_dicts()`` are derived views and the
  row→column→row round trip is the identity;
* every column carries a lazily built, incrementally maintained null mask and
  null count;
* statistics (dtype tag, comparison-safe value type, min/max range, distinct
  set) are computed once on demand and then folded forward in O(1) per append
  — never recomputed from scratch after a mutation;
* ``column_data`` / ``Batch.from_table`` alias live storage (zero-copy scans);
* CSV ingest is column-major and rejects non-rectangular input.
"""

from __future__ import annotations

import pytest

from repro.engine.column import Column, ColumnStats
from repro.engine.csvio import table_from_csv
from repro.engine.expressions import Batch
from repro.engine.table import QueryResult, Table
from repro.errors import CatalogError, DatasetError
from repro.sql.schema import DataType


class TestColumnRoundTrip:
    def test_rows_to_columns_to_rows_identity(self):
        rows = [[1, "a", None], [2, "b", 2.5], [None, None, -1.0]]
        table = Table("t", ["x", "y", "z"], rows)
        assert [list(row) for row in table.rows()] == rows
        rebuilt = Table.from_columns(
            "t2", {name: table.column(name) for name in table.column_names}
        )
        assert list(rebuilt.rows()) == list(table.rows())

    def test_from_columns_adoption_shares_storage(self):
        values = [1, 2, 3]
        adopted = Table.from_columns("t", {"x": values}, adopt=True)
        assert adopted.column_data("x") is values
        copied = Table.from_columns("t", {"x": values})
        assert copied.column_data("x") is not values

    def test_zero_copy_scan_batch_aliases_storage(self):
        table = Table("t", ["x", "y"], [[1, "a"], [2, "b"]])
        batch = Batch.from_table(table, "t")
        assert batch.columns[0] is table.column_data("x")
        assert batch.columns[1] is table.column_data("y")

    def test_column_accessor_copies_but_column_data_aliases(self):
        table = Table("t", ["x"], [[1], [2]])
        assert table.column("x") is not table.column_data("x")
        assert table.column_data("x") is table.column_data("x")


class TestNullMasks:
    def test_null_mask_and_count(self):
        column = Column([1, None, 3, None])
        assert column.null_count == 2
        assert column.has_nulls
        assert column.null_mask() == [False, True, False, True]

    def test_mask_maintained_incrementally_after_build(self):
        column = Column([1, None])
        mask = column.null_mask()
        assert mask == [False, True]
        column.append(None)
        column.append(5)
        assert column.null_mask() == [False, True, True, False]
        assert column.null_count == 2

    def test_table_null_accessors(self):
        table = Table("t", ["x"], [[None], [1], [None]])
        assert table.null_count("x") == 2
        assert table.null_mask("x") == [True, False, True]
        table.append([None])
        assert table.null_count("x") == 3
        assert table.null_mask("x") == [True, False, True, True]

    def test_all_null_column_stats(self):
        table = Table("t", ["x"], [[None], [None]])
        assert table.value_range("x") is None
        assert table.distinct_count("x") == 0
        assert table.schema().column("x").data_type is DataType.NULL


class TestMixedTypeColumns:
    def test_dtype_unifies_but_value_type_refuses(self):
        table = Table("t", ["x"], [[1], ["oops"], [3]])
        # Storage dtype unifies to TEXT; the optimizer-facing value type
        # reports None because numbers and strings cannot be compared.
        assert table.schema().column("x").data_type is DataType.TEXT
        assert table.value_type("x") is None

    def test_numeric_mix_unifies_to_float(self):
        table = Table("t", ["x"], [[1], [2.5], [True]])
        assert table.value_type("x") is DataType.FLOAT

    def test_mixed_range_raises_like_min_would(self):
        table = Table("t", ["x"], [[1], ["oops"]])
        with pytest.raises(TypeError):
            table.value_range("x")

    def test_unhashable_values_poison_distinct_but_not_append(self):
        table = Table("t", ["x"], [[1]])
        assert table.distinct_count("x") == 1  # stats now live
        table.append([[2, 3]])  # unhashable value must not raise at append
        with pytest.raises(TypeError):
            table.distinct_count("x")

    def test_heterogeneous_distinct_values_sorted_by_repr(self):
        table = Table("t", ["x"], [[2], ["b"], [1]])
        assert table.distinct_values("x") == sorted({2, "b", 1}, key=repr)


class TestIncrementalStats:
    def test_stats_fold_forward_under_appends(self):
        table = Table("t", ["x"], [[3], [1]])
        # Force the stats block into existence, then mutate.
        assert table.value_range("x") == (1, 3)
        assert table.distinct_count("x") == 2
        store = table.column_store("x")
        stats_before = store.stats()
        table.append([7])
        table.append([1])
        table.append([None])
        # Same stats object — folded forward, not rebuilt.
        assert store.stats() is stats_before
        assert table.value_range("x") == (1, 7)
        assert table.distinct_count("x") == 3
        assert table.null_count("x") == 1
        assert table.value_type("x") is DataType.INTEGER

    def test_value_type_narrowing_under_appends(self):
        table = Table("t", ["x"], [[1]])
        assert table.value_type("x") is DataType.INTEGER
        table.append([2.5])
        assert table.value_type("x") is DataType.FLOAT
        table.append(["oops"])
        assert table.value_type("x") is None

    def test_schema_reflects_appends(self):
        table = Table("t", ["x"], [[1], [2]])
        assert table.schema().column("x").data_type is DataType.INTEGER
        table.append([2.5])
        assert table.schema().column("x").data_type is DataType.FLOAT

    def test_data_version_bumps_per_append(self):
        table = Table("t", ["x"], [[1]])
        version = table.data_version
        table.append([2])
        assert table.data_version == version + 1

    def test_full_stats_match_incremental_stats(self):
        values = [3, None, 1, 2.0, 2, None, 9]
        incremental = Column()
        for value in values:
            incremental.stats()  # force eager folding from the first append
            incremental.append(value)
        full = ColumnStats.from_values(values)
        assert incremental.stats().dtype is full.dtype
        assert incremental.stats().value_type is full.value_type
        assert incremental.value_range() == (1, 9)
        assert incremental.distinct_set() == full.distinct


class TestCsvIngestEdgeCases:
    def test_empty_input_raises(self):
        with pytest.raises(DatasetError):
            table_from_csv("t", "")

    def test_header_only_is_empty_table(self):
        table = table_from_csv("t", "a,b\n")
        assert table.column_names == ["a", "b"]
        assert table.row_count == 0

    def test_ragged_row_raises_with_line_number(self):
        with pytest.raises(DatasetError, match="line 3"):
            table_from_csv("t", "a,b\n1,2\n1,2,3\n")

    def test_blank_lines_skipped(self):
        table = table_from_csv("t", "a,b\n1,2\n\n3,4\n")
        assert list(table.rows()) == [(1, 2), (3, 4)]

    def test_duplicate_header_rejected(self):
        with pytest.raises(CatalogError):
            table_from_csv("t", "a,a\n1,2\n")

    def test_empty_cells_become_nulls_with_mask(self):
        table = table_from_csv("t", "a,b\n1,\n,x\n")
        assert list(table.rows()) == [(1, None), (None, "x")]
        assert table.null_mask("a") == [False, True]
        assert table.null_mask("b") == [True, False]


class TestLazyQueryResult:
    def test_column_handoff_defers_row_pivot(self):
        result = QueryResult(
            columns=["a", "b"], schema=None, column_data=[[1, 2], ["x", "y"]]
        )
        assert result.row_count == 2
        assert result.column_values("b") == ["x", "y"]  # no pivot needed
        assert result._rows is None
        assert result.rows == [(1, "x"), (2, "y")]  # pivot on demand
        assert result.rows is result.rows  # memoized

    def test_row_construction_still_works(self):
        result = QueryResult(columns=["a"], rows=[(1,), (2,)], schema=None)
        assert result.row_count == 2
        assert result.column_values("a") == [1, 2]

    def test_empty_projection_rows(self):
        result = QueryResult(columns=[], schema=None, column_data=[], row_count=3)
        assert result.rows == [(), (), ()]

    def test_to_table_from_columns(self):
        result = QueryResult(columns=["a"], schema=None, column_data=[[1, 2]])
        table = result.to_table("round")
        assert table.column("a") == [1, 2]

    def test_copy_preserves_laziness_and_isolation(self):
        result = QueryResult(columns=["a"], schema=None, column_data=[[1, 2]])
        duplicate = result.copy()
        assert duplicate._rows is None  # still column-backed, pivot deferred
        assert duplicate._column_data is not result._column_data
        assert duplicate._column_data[0] is not result._column_data[0]
        duplicate.rows.append((3,))
        assert result.row_count == 2  # copies never alias each other

    def test_query_cache_round_trip_stays_columnar(self):
        from repro.engine.catalog import Catalog

        catalog = Catalog()
        catalog.create_table("t", ["a"], [[1], [2]])
        catalog.execute("SELECT a FROM t")  # store
        hit = catalog.execute("SELECT a FROM t")  # cache hit
        assert hit._rows is None  # served column-backed, no forced pivot
        assert hit.column_values("a") == [1, 2]
        assert hit.rows == [(1,), (2,)]
