"""Window-function operator unit suite.

Partition edge cases, NULL-ordering parity with sqlite, frame defaults,
lag/lead beyond partition bounds, shared-spec sorting, placement rules, and
the ordered-index sort-elision lever — the unit-level complement to the
seeded window differential fuzz in ``test_differential_sqlite.py``.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.engine.catalog import Catalog
from repro.engine.options import ExecOptions
from repro.errors import EngineError

NO_CACHE = ExecOptions(use_cache=False)


def _catalog_with(name, columns, rows):
    catalog = Catalog()
    catalog.create_table(name, columns, rows)
    return catalog


def _rows(catalog, sql):
    return catalog.execute(sql, NO_CACHE).rows


def _sqlite_rows(columns, rows, sql, table="t"):
    connection = sqlite3.connect(":memory:")
    connection.execute(f"CREATE TABLE {table} ({', '.join(columns)})")
    connection.executemany(
        f"INSERT INTO {table} VALUES ({', '.join('?' for _ in columns)})", rows
    )
    result = [tuple(row) for row in connection.execute(sql).fetchall()]
    connection.close()
    return result


class TestPartitionEdges:
    COLUMNS = ["id", "grp", "val"]

    def test_empty_table(self):
        catalog = _catalog_with("t", self.COLUMNS, [])
        assert _rows(catalog, "SELECT id, row_number() OVER (ORDER BY id) AS r FROM t") == []

    def test_single_row_partitions(self):
        rows = [(1, "a", 10), (2, "b", 20), (3, "c", 30)]
        catalog = _catalog_with("t", self.COLUMNS, rows)
        result = _rows(
            catalog,
            "SELECT id, row_number() OVER (PARTITION BY grp ORDER BY val) AS r, "
            "sum(val) OVER (PARTITION BY grp) AS s FROM t ORDER BY id",
        )
        assert result == [(1, 1, 10), (2, 1, 20), (3, 1, 30)]

    def test_single_partition_spans_table(self):
        rows = [(i, "only", i * 10) for i in range(1, 6)]
        catalog = _catalog_with("t", self.COLUMNS, rows)
        result = _rows(
            catalog,
            "SELECT id, sum(val) OVER (PARTITION BY grp ORDER BY id) AS running "
            "FROM t ORDER BY id",
        )
        assert [row[1] for row in result] == [10, 30, 60, 100, 150]

    def test_null_partition_key_forms_one_partition(self):
        rows = [(1, None, 5), (2, None, 7), (3, "a", 9)]
        catalog = _catalog_with("t", self.COLUMNS, rows)
        result = _rows(
            catalog,
            "SELECT id, count(*) OVER (PARTITION BY grp) AS n FROM t ORDER BY id",
        )
        assert result == [(1, 2), (2, 2), (3, 1)]


class TestSqliteParity:
    """Pin NULL ordering, frame defaults and tie handling to the oracle."""

    COLUMNS = ["id", "grp", "val"]
    ROWS = [
        (1, "a", 10),
        (2, "a", None),
        (3, "b", 10),
        (4, None, 7),
        (5, "b", None),
        (6, "a", 10),
        (7, None, None),
        (8, "b", 3),
    ]

    @pytest.mark.parametrize(
        "sql",
        [
            # NULLs sort smallest: first ASC, last DESC — window values
            # (ranks, running sums) depend on that placement.
            "SELECT id, rank() OVER (ORDER BY val) AS r FROM t ORDER BY id",
            "SELECT id, rank() OVER (ORDER BY val DESC) AS r FROM t ORDER BY id",
            "SELECT id, dense_rank() OVER (ORDER BY val) AS r FROM t ORDER BY id",
            # Default frame with ORDER BY: running value, peers share it.
            "SELECT id, sum(val) OVER (ORDER BY val) AS s FROM t ORDER BY id",
            "SELECT id, count(val) OVER (ORDER BY val) AS c FROM t ORDER BY id",
            # Default frame without ORDER BY: the whole partition.
            "SELECT id, sum(val) OVER (PARTITION BY grp) AS s FROM t ORDER BY id",
            "SELECT id, avg(val) OVER () AS a FROM t ORDER BY id",
            # Explicit physical frames.
            "SELECT id, sum(val) OVER (ORDER BY id ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
            "AS s FROM t ORDER BY id",
            "SELECT id, min(val) OVER (PARTITION BY grp ORDER BY id "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS m FROM t ORDER BY id",
        ],
    )
    def test_matches_sqlite(self, sql):
        catalog = _catalog_with("t", self.COLUMNS, self.ROWS)
        assert _rows(catalog, sql) == _sqlite_rows(self.COLUMNS, self.ROWS, sql)


class TestLagLead:
    COLUMNS = ["id", "grp", "val"]
    ROWS = [(1, "a", 10), (2, "a", 20), (3, "a", 30), (4, "b", 40), (5, "b", 50)]

    def _run(self, sql):
        catalog = _catalog_with("t", self.COLUMNS, self.ROWS)
        return _rows(catalog, sql)

    def test_lag_beyond_partition_start_is_null(self):
        result = self._run(
            "SELECT id, lag(val, 2) OVER (PARTITION BY grp ORDER BY id) AS p "
            "FROM t ORDER BY id"
        )
        assert result == [(1, None), (2, None), (3, 10), (4, None), (5, None)]

    def test_lead_beyond_partition_end_uses_default(self):
        result = self._run(
            "SELECT id, lead(val, 1, -1) OVER (PARTITION BY grp ORDER BY id) AS n "
            "FROM t ORDER BY id"
        )
        assert result == [(1, 20), (2, 30), (3, -1), (4, 50), (5, -1)]

    def test_zero_offset_is_current_row(self):
        result = self._run(
            "SELECT id, lag(val, 0) OVER (ORDER BY id) AS p FROM t ORDER BY id"
        )
        assert [row[1] for row in result] == [10, 20, 30, 40, 50]

    def test_lag_never_crosses_partitions(self):
        result = self._run(
            "SELECT id, lag(val) OVER (PARTITION BY grp ORDER BY id) AS p "
            "FROM t ORDER BY id"
        )
        # Row 4 opens partition 'b': its lag is NULL, not 30 from 'a'.
        assert result[3] == (4, None)


class TestPlacementRules:
    COLUMNS = ["id", "grp", "val"]
    ROWS = [(1, "a", 10)]

    def _catalog(self):
        return _catalog_with("t", self.COLUMNS, self.ROWS)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t WHERE row_number() OVER (ORDER BY id) = 1",
            "SELECT grp FROM t GROUP BY grp HAVING count(*) OVER () > 0",
            "SELECT count(*) FROM t GROUP BY rank() OVER (ORDER BY id)",
            # Nested windows are rejected.
            "SELECT sum(rank() OVER (ORDER BY id)) OVER (ORDER BY id) FROM t",
        ],
    )
    def test_rejected_placements(self, sql):
        with pytest.raises(EngineError):
            self._catalog().execute(sql, NO_CACHE)

    def test_window_allowed_in_select_and_order_by(self):
        result = self._catalog().execute(
            "SELECT id, rank() OVER (ORDER BY val) AS r FROM t ORDER BY r", NO_CACHE
        )
        assert result.rows == [(1, 1)]


class TestSharedSpecAndIndexElision:
    def test_same_spec_windows_agree_with_sqlite(self):
        columns = ["id", "grp", "val"]
        rows = [(i, "ab"[i % 2], (i * 37) % 19) for i in range(40)]
        sql = (
            "SELECT id, row_number() OVER (PARTITION BY grp ORDER BY val, id) AS r, "
            "sum(val) OVER (PARTITION BY grp ORDER BY val, id) AS s FROM t ORDER BY id"
        )
        catalog = _catalog_with("t", columns, rows)
        assert _rows(catalog, sql) == _sqlite_rows(columns, rows, sql)

    def test_ordered_index_elides_window_sort(self):
        columns = ["id", "ts", "qty"]
        rows = [(i, (i * 131) % 997, i % 7 + 1) for i in range(200)]
        sql = "SELECT id, sum(qty) OVER (ORDER BY ts) AS running FROM t ORDER BY id"

        plain = _catalog_with("t", columns, rows)
        indexed = _catalog_with("t", columns, rows)
        indexed.create_index("t", "ts", "ordered")

        assert _rows(indexed, sql) == _rows(plain, sql)
        report = indexed.explain(sql, physical=True)
        assert any(
            decision.get("decision") == "window_sort_elision"
            for decision in report.access_paths
        ), f"expected a window_sort_elision access decision, got {report.access_paths}"

    def test_elided_plan_survives_appends(self):
        """The runtime re-check must fall back to sorting after new rows."""
        columns = ["id", "ts", "qty"]
        rows = [(i, (i * 17) % 101, 1) for i in range(50)]
        sql = "SELECT id, sum(qty) OVER (ORDER BY ts) AS running FROM t ORDER BY id"
        indexed = _catalog_with("t", columns, rows)
        indexed.create_index("t", "ts", "ordered")
        before = _rows(indexed, sql)
        assert len(before) == 50
        indexed.append_rows("t", [(50 + i, 3 + i, 2) for i in range(10)])
        plain = _catalog_with("t", columns, rows + [(50 + i, 3 + i, 2) for i in range(10)])
        assert _rows(indexed, sql) == _rows(plain, sql)
