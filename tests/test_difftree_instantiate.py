"""Tests for Difftree instantiation, bindings and coverage."""

from __future__ import annotations

import pytest

from repro.difftree import (
    AnyNode,
    OptNode,
    binding_space_size,
    build_forest,
    collect_choice_nodes,
    default_bindings,
    enumerate_bindings,
    expressiveness_ratio,
    find_binding_for,
    instantiate,
    merge_nodes,
    parse_query_log,
)
from repro.errors import BindingError, DifftreeError
from repro.sql.ast_nodes import Select
from repro.sql.parser import parse_select
from repro.sql.printer import to_sql


@pytest.fixture()
def literal_tree():
    q1 = parse_select("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p")
    q2 = parse_select("SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p")
    return merge_nodes(q1, q2), q1, q2


@pytest.fixture()
def opt_tree():
    q1 = parse_select("SELECT a FROM t")
    q2 = parse_select("SELECT a FROM t WHERE a = 1 AND b = 2")
    return merge_nodes(q1, q2), q1, q2


class TestBindings:
    def test_default_bindings_select_first_alternative(self, literal_tree):
        tree, q1, _q2 = literal_tree
        assert instantiate(tree, default_bindings(tree)) == q1

    def test_explicit_index_binding(self, literal_tree):
        tree, _q1, q2 = literal_tree
        choice = collect_choice_nodes(tree)[0]
        assert instantiate(tree, {choice.choice_id: 1}) == q2

    def test_literal_value_binding_generalizes(self, literal_tree):
        """A slider/brush can bind values never seen in the input queries."""
        tree, _q1, _q2 = literal_tree
        choice = collect_choice_nodes(tree)[0]
        query = instantiate(tree, {choice.choice_id: 42})
        assert "a = 42" in to_sql(query)

    def test_invalid_index_raises(self, literal_tree):
        tree, _q1, _q2 = literal_tree
        choice = collect_choice_nodes(tree)[0]
        with pytest.raises(BindingError):
            # A non-literal binding value that is not an index: booleans are
            # rejected explicitly to avoid the int/bool confusion.
            instantiate(tree, {choice.choice_id: True})

    def test_out_of_range_index_on_non_literal_choice_raises(self, fig2_queries):
        tree = build_forest(fig2_queries[:2], strategy="merged").trees[0]
        choice = collect_choice_nodes(tree)[0]
        assert isinstance(choice, AnyNode)
        with pytest.raises(BindingError):
            instantiate(tree, {choice.choice_id: 7})

    def test_opt_binding_toggles_conjunct(self, opt_tree):
        tree, q1, q2 = opt_tree
        opts = [node for node in collect_choice_nodes(tree) if isinstance(node, OptNode)]
        all_on = {opt.choice_id: True for opt in opts}
        all_off = {opt.choice_id: False for opt in opts}
        assert instantiate(tree, all_on) == q2
        assert instantiate(tree, all_off) == q1

    def test_binding_space_size(self, opt_tree):
        tree, _q1, _q2 = opt_tree
        opts = collect_choice_nodes(tree)
        assert binding_space_size(tree) == 2 ** len(opts)

    def test_enumerate_bindings_respects_limit(self, opt_tree):
        tree, _q1, _q2 = opt_tree
        assert len(list(enumerate_bindings(tree, limit=1))) == 1
        assert len(list(enumerate_bindings(tree))) == binding_space_size(tree)


class TestInstantiationStructure:
    def test_instantiation_always_yields_select(self, fig2_queries):
        tree = build_forest(fig2_queries, strategy="merged").trees[0]
        for bindings in enumerate_bindings(tree, limit=64):
            query = instantiate(tree, bindings)
            assert isinstance(query, Select)
            # Every instantiation must be printable, re-parseable SQL.
            assert parse_select(to_sql(query)) == query

    def test_opt_off_removes_where_clause(self):
        with_where = parse_select("SELECT a FROM t WHERE a = 1")
        without = parse_select("SELECT a FROM t")
        tree = merge_nodes(with_where, without)
        opt = collect_choice_nodes(tree)[0]
        assert instantiate(tree, {opt.choice_id: False}) == without

    def test_removing_all_select_items_raises(self):
        tree = Select(select_items=[], from_clause=None)
        # Build a pathological tree whose only select item is an OPT.
        from repro.sql.ast_nodes import SelectItem, ColumnRef, TableRef

        opt = OptNode(child=SelectItem(expr=ColumnRef("a")), default_on=True)
        tree = Select(select_items=[opt], from_clause=TableRef("t"))
        with pytest.raises(BindingError):
            instantiate(tree, {opt.choice_id: False})

    def test_any_requires_alternatives(self):
        with pytest.raises(DifftreeError):
            AnyNode(alternatives=[])

    def test_opt_requires_child(self):
        with pytest.raises(DifftreeError):
            OptNode(child=None)


class TestCoverage:
    def test_expressiveness_ratio_full(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="merged")
        assert expressiveness_ratio(forest.trees[0], forest.queries) == 1.0

    def test_expressiveness_ratio_partial(self, fig2_queries):
        queries = parse_query_log(fig2_queries)
        pair_tree = merge_nodes(queries[0], queries[1])
        ratio = expressiveness_ratio(pair_tree, queries)
        assert 0.0 < ratio < 1.0

    def test_find_binding_for_unreachable_query(self):
        tree = parse_select("SELECT a FROM t")
        target = parse_select("SELECT b FROM t")
        assert find_binding_for(tree, target) is None

    def test_covid_forest_covers_log(self, covid_log):
        forest = build_forest(covid_log, strategy="clustered")
        assert forest.covers_all()
