"""Tests for secondary indexes and cost-based access-path selection.

Covers the index data structures themselves (build, append maintenance,
sealing, clone sharing, poisoning), their integration with Column/Table/
Catalog (copy-on-write survival, snapshot pickling, freeze consistency),
the distinct-set cap on ColumnStats, and the optimizer's scan-vs-index
decision as seen through EXPLAIN.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.engine.catalog import Catalog
from repro.engine.column import Column, ColumnStats
from repro.engine.indexes import (
    HASH,
    ORDERED,
    ORDERED_TAIL_LIMIT,
    UNBOUNDED,
    HashIndex,
    OrderedIndex,
    build_index,
)
from repro.engine.table import Table
from repro.errors import CatalogError, EngineError


def brute_eq(values, probe):
    return [i for i, v in enumerate(values) if v is not None and v == probe]


def brute_range(values, low, high, low_inc, high_inc):
    out = []
    for i, v in enumerate(values):
        if v is None:
            continue
        if low is not UNBOUNDED:
            if low_inc:
                if v < low:
                    continue
            elif v <= low:
                continue
        if high is not UNBOUNDED:
            if high_inc:
                if v > high:
                    continue
            elif v >= high:
                continue
        out.append(i)
    return out


class TestHashIndex:
    def test_build_and_lookup(self):
        values = [3, 1, None, 3, 7, 1, 3]
        index = build_index(HASH, values)
        assert index.lookup_eq(3) == [0, 3, 6]
        assert index.lookup_eq(1) == [1, 5]
        assert index.lookup_eq(99) == []
        assert index.covered == len(values)

    def test_lookup_positions_ascending(self):
        rng = random.Random(11)
        values = [rng.randrange(20) if rng.random() > 0.1 else None for _ in range(5000)]
        index = build_index(HASH, values)
        for probe in range(20):
            assert index.lookup_eq(probe) == brute_eq(values, probe)

    def test_incremental_add_matches_rebuild(self):
        index = HashIndex()
        values = []
        rng = random.Random(5)
        for i in range(3000):
            value = rng.randrange(50) if rng.random() > 0.2 else None
            index.add(value, i)
            values.append(value)
            if i % 700 == 0:
                index.seal()
        fresh = build_index(HASH, values)
        for probe in range(50):
            assert index.lookup_eq(probe) == fresh.lookup_eq(probe)
        assert index.covered == len(values)

    def test_lookup_in_dedupes_and_sorts(self):
        index = build_index(HASH, [5, 2, 5, 9])
        assert index.lookup_in([5, 2, 5]) == [0, 1, 2]
        assert index.lookup_in([404]) == []

    def test_unhashable_value_poisons(self):
        index = build_index(HASH, [1, [2, 3], 4])
        assert index.poisoned
        assert index.lookup_eq(1) is None

    def test_unhashable_probe_falls_back(self):
        index = build_index(HASH, [1, 2, 3])
        assert index.lookup_eq([1]) is None


class TestOrderedIndex:
    def test_range_lookup_matches_brute_force(self):
        rng = random.Random(7)
        values = [rng.randrange(100) if rng.random() > 0.15 else None for _ in range(4000)]
        index = build_index(ORDERED, values)
        for _ in range(50):
            low, high = sorted((rng.randrange(100), rng.randrange(100)))
            for low_inc in (True, False):
                for high_inc in (True, False):
                    assert index.lookup_range(low, high, low_inc, high_inc) == brute_range(
                        values, low, high, low_inc, high_inc
                    )
        assert index.lookup_range(30, UNBOUNDED, True, True) == brute_range(
            values, 30, UNBOUNDED, True, True
        )
        assert index.lookup_range(UNBOUNDED, 30, True, False) == brute_range(
            values, UNBOUNDED, 30, True, False
        )

    def test_tail_seals_itself_past_limit(self):
        index = OrderedIndex()
        total = ORDERED_TAIL_LIMIT * 3 + 17
        for i in range(total):
            index.add(i % 97, i)
        assert index.tail_size <= ORDERED_TAIL_LIMIT
        assert index.segments  # at least one sealed segment exists
        fresh = build_index(ORDERED, [i % 97 for i in range(total)])
        assert index.lookup_eq(13) == fresh.lookup_eq(13)

    def test_null_bound_selects_nothing(self):
        index = build_index(ORDERED, [1, 2, 3])
        assert index.lookup_range(None, 5, True, True) == []
        assert index.lookup_range(1, None, True, True) == []

    def test_mixed_incomparable_types_poison(self):
        index = build_index(ORDERED, [1, "two", 3] * 500)
        index.seal()
        assert index.poisoned
        assert index.lookup_range(0, 10, True, True) is None

    def test_incomparable_probe_falls_back(self):
        index = build_index(ORDERED, [1, 2, 3])
        assert index.lookup_range("a", "z", True, True) is None


class TestCloneSharing:
    @pytest.mark.parametrize("kind", [HASH, ORDERED])
    def test_clone_shares_sealed_segments_by_identity(self, kind):
        index = build_index(kind, list(range(2000)))
        index.seal()
        original_segments = index.segments
        clone = index.clone()
        assert len(clone.segments) == len(original_segments)
        for ours, theirs in zip(clone.segments, original_segments):
            assert ours is theirs  # shared, not rebuilt
        assert clone.tail_size == 0
        assert clone.covered == index.covered

    def test_clone_tail_isolation(self):
        index = build_index(HASH, [1, 2, 3])
        clone = index.clone()
        clone.add(4, 3)
        assert clone.lookup_eq(4) == [3]
        assert index.lookup_eq(4) == []  # original untouched

    def test_clone_chain_keeps_sharing(self):
        """A chain of clones (repeated CoW swaps) never rebuilds segments."""
        index = build_index(ORDERED, list(range(5000)))
        index.seal()
        first_generation = index.segments
        current = index
        position = 5000
        for _ in range(10):
            current = current.clone()
            current.add(position, position)
            position += 1
        current.seal()
        shared = [
            segment
            for segment in current.segments
            if any(segment is original for original in first_generation)
        ]
        assert shared, "deep clone chain lost segment sharing"
        fresh = build_index(ORDERED, list(range(position)))
        assert current.lookup_range(4995, 5005, True, True) == fresh.lookup_range(
            4995, 5005, True, True
        )

    def test_clone_of_poisoned_index_stays_poisoned(self):
        index = build_index(HASH, [1, [2], 3])
        assert index.poisoned
        assert index.clone().poisoned

    def test_column_clone_is_o1_in_index_size(self):
        """Cloning an indexed column must not scale with the index contents.

        The mechanism under test: clone() shares sealed segment objects
        instead of copying them, so a 50k-entry index and a 50-entry index
        clone in the same handful of object allocations.
        """
        big = Column(list(range(50_000)))
        big.create_index(HASH)
        big.seal_indexes()
        import tracemalloc

        tracemalloc.start()
        clones = [big.clone() for _ in range(5)]
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Each clone re-wraps the shared values list (~8 bytes/slot here) but
        # must NOT duplicate the index dict (which would be megabytes).
        assert peak < 5 * len(big.values) * 16
        for clone in clones:
            assert clone.index(HASH).segments[0] is big.index(HASH).segments[0]


class TestColumnIntegration:
    def test_append_maintains_indexes(self):
        column = Column([1, 2, 3])
        column.create_index(HASH)
        column.create_index(ORDERED)
        for value in (2, None, 9):
            column.append(value)
        assert column.index(HASH).lookup_eq(2) == [1, 3]
        assert column.index(ORDERED).lookup_range(2, 9, True, True) == [1, 2, 3, 5]
        assert column.index(HASH).covered == len(column.values)

    def test_drop_index(self):
        column = Column([1])
        column.create_index(HASH)
        column.drop_index(HASH)
        assert column.index(HASH) is None
        assert column.index_kinds() == ()

    def test_index_pickle_round_trip(self):
        column = Column([3, 1, None, 3, 5])
        column.create_index(HASH)
        column.create_index(ORDERED)
        column.seal_indexes()
        restored = pickle.loads(pickle.dumps(column))
        for kind in (HASH, ORDERED):
            index = restored.index(kind)
            assert index.tail_size == 0
            assert index.covered == len(restored.values)
        assert restored.index(HASH).lookup_eq(3) == [0, 3]
        assert restored.index(ORDERED).lookup_range(1, 3, True, True) == [0, 1, 3]


class TestDistinctCap:
    def test_distinct_caps_to_estimate(self, monkeypatch):
        monkeypatch.setattr("repro.engine.column.DISTINCT_TRACK_LIMIT", 8)
        column = Column()
        column.stats()  # arm incremental maintenance
        for i in range(20):
            column.append(i)
        stats = column.stats()
        assert stats.distinct is None
        assert stats.distinct_capped
        assert stats.distinct_estimate == 9  # size when it crossed the cap
        assert column.distinct_count() == 9
        # The full set remains recomputable and exact.
        assert column.distinct_set() == set(range(20))

    def test_capped_is_distinct_from_poisoned(self, monkeypatch):
        monkeypatch.setattr("repro.engine.column.DISTINCT_TRACK_LIMIT", 4)
        capped = ColumnStats.from_values(range(10))
        assert capped.distinct_capped and capped.distinct is None
        poisoned = ColumnStats.from_values([[1], [2]])
        assert poisoned.distinct is None and not poisoned.distinct_capped

    def test_copy_shares_set_until_mutation(self):
        stats = ColumnStats.from_values([1, 2, 3])
        copied = stats.copy()
        assert copied.distinct is stats.distinct  # O(1) shared copy
        assert stats.distinct_shared and copied.distinct_shared
        copied.observe(4)  # first mutation pays the copy
        assert copied.distinct is not stats.distinct
        assert stats.distinct == {1, 2, 3}
        assert copied.distinct == {1, 2, 3, 4}
        # The original's next mutation also copies (it is still marked shared).
        stats.observe(5)
        assert stats.distinct == {1, 2, 3, 5}
        assert copied.distinct == {1, 2, 3, 4}

    def test_capped_copy_is_free(self, monkeypatch):
        monkeypatch.setattr("repro.engine.column.DISTINCT_TRACK_LIMIT", 4)
        stats = ColumnStats.from_values(range(10))
        copied = stats.copy()
        assert copied.distinct is None
        assert copied.distinct_capped
        assert copied.distinct_estimate == stats.distinct_estimate


class TestTableAndFreeze:
    def test_table_create_index_and_introspection(self):
        table = Table("t", ["a", "b"], [(1, "x"), (2, "y")])
        table.create_index("a", HASH)
        assert table.indexed_columns() == {"a": (HASH,)}
        assert table.column_index("a", HASH) is not None
        assert table.column_index("a", ORDERED) is None
        assert table.column_index("missing", HASH) is None

    def test_frozen_table_rejected_append_leaves_index_consistent(self):
        """Satellite regression: a raising stray append must not half-fold.

        The freeze tripwire raises before any column mutates, so after the
        raise every index must still agree exactly with a fresh rebuild over
        the (unchanged) values.
        """
        table = Table("t", ["a"], [(i,) for i in range(100)])
        table.create_index("a", HASH)
        table.create_index("a", ORDERED)
        table.freeze()
        with pytest.raises(EngineError):
            table.append((777,))
        store = table.column_store("a")
        assert len(store.values) == 100
        for kind in (HASH, ORDERED):
            index = table.column_index("a", kind)
            fresh = build_index(kind, store.values)
            assert index.covered == fresh.covered == 100
            for probe in (0, 50, 99, 777):
                assert index.lookup_eq(probe) == fresh.lookup_eq(probe)

    def test_index_survives_cow_clone_chain(self):
        catalog = Catalog()
        catalog.create_table("t", ["id", "val"], [(i, i % 7) for i in range(200)])
        catalog.create_index("t", "id", HASH)
        first = catalog.table("t").column_index("id", HASH)
        first.seal()
        original_segments = first.segments
        for generation in range(5):
            catalog.append_rows("t", [(1000 + generation, 0)])
        final = catalog.table("t").column_index("id", HASH)
        assert final is not first  # CoW produced new index objects...
        final.seal()
        assert any(
            segment in original_segments for segment in final.segments
        ), "CoW chain rebuilt the index instead of sharing segments"
        assert final.covered == 205
        assert final.lookup_eq(1003) == [203]

    def test_catalog_create_index_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().create_index("nope", "a", HASH)

    def test_unknown_kind_raises(self):
        with pytest.raises(EngineError):
            build_index("btree", [1, 2])


class TestSnapshotTransport:
    def test_snapshot_pickle_ships_warm_sealed_indexes(self):
        catalog = Catalog()
        catalog.create_table("t", ["id", "val"], [(i, i % 10) for i in range(300)])
        catalog.create_index("t", "id", HASH)
        catalog.create_index("t", "val", ORDERED)
        snapshot = catalog.snapshot()
        restored = pickle.loads(pickle.dumps(snapshot))
        table = restored.table("t")
        for column, kind in (("id", HASH), ("val", ORDERED)):
            index = table.column_index(column, kind)
            assert index is not None
            assert index.tail_size == 0  # warm: sealed before pickling
            assert index.covered == 300
        assert restored.execute("SELECT val FROM t WHERE id = 123").rows == [(3,)]

    def test_snapshot_executes_index_scan_in_process_worker_path(self):
        """Drive the exact code path the process tier runs (no subprocess)."""
        from repro.serving.workers import _run_task

        catalog = Catalog()
        catalog.create_table("t", ["id", "val"], [(i, i * 2) for i in range(500)])
        catalog.create_index("t", "id", HASH)
        snapshot = pickle.loads(pickle.dumps(catalog.snapshot()))
        from repro.engine.catalog import DetachedParser
        from repro.engine.query_cache import QueryCache

        snapshot.attach_caches(
            plan_cache={}, query_cache=QueryCache(capacity=8), parse=DetachedParser()
        )
        result = _run_task("execute", snapshot, ("SELECT val FROM t WHERE id = 250", True))
        assert result.rows == [(500,)]


class TestAccessPathSelection:
    @pytest.fixture()
    def catalog(self):
        rng = random.Random(99)
        catalog = Catalog()
        rows = [(i, rng.randrange(100), f"n{i % 10}") for i in range(400)]
        catalog.create_table("t", ["id", "val", "name"], rows)
        catalog.create_index("t", "id", HASH)
        catalog.create_index("t", "val", ORDERED)
        return catalog

    def test_point_lookup_uses_hash_index(self, catalog):
        explain = catalog.explain("SELECT val FROM t WHERE id = 7", physical=True)
        assert "access_path" in explain
        assert "IndexScan" in explain
        assert "hash" in explain

    def test_range_uses_ordered_index(self, catalog):
        explain = catalog.explain("SELECT id FROM t WHERE val < 20", physical=True)
        assert "IndexScan" in explain
        assert "ordered" in explain

    def test_residual_conjuncts_stay_filtered(self, catalog):
        sql = "SELECT id FROM t WHERE id = 7 AND name = 'n7'"
        explain = catalog.explain(sql, physical=True)
        assert "IndexScan" in explain
        assert "Filter" in explain  # the name conjunct survives above
        assert catalog.execute(sql).rows == catalog.execute(sql, optimize=False).rows

    def test_optimize_false_never_index_scans(self, catalog):
        explain = catalog.explain("SELECT val FROM t WHERE id = 7")
        assert "IndexScan" not in explain.split("== Optimizer")[0]
        result = catalog.execute("SELECT val FROM t WHERE id = 7", optimize=False)
        assert len(result.rows) == 1

    def test_no_index_no_index_scan(self, catalog):
        explain = catalog.explain("SELECT id FROM t WHERE name = 'n3'", physical=True)
        assert "IndexScan" not in explain

    def test_unselective_predicate_keeps_seq_scan(self, catalog):
        explain = catalog.explain("SELECT id FROM t WHERE val >= 0", physical=True)
        assert "IndexScan" not in explain
        assert "kept sequential scan" in explain

    def test_small_table_keeps_seq_scan(self):
        catalog = Catalog()
        catalog.create_table("tiny", ["id"], [(i,) for i in range(10)])
        catalog.create_index("tiny", "id", HASH)
        explain = catalog.explain("SELECT id FROM tiny WHERE id = 3", physical=True)
        assert "IndexScan" not in explain

    def test_parameters_and_nulls_never_index(self, catalog):
        explain = catalog.explain("SELECT id FROM t WHERE val = val", physical=True)
        assert "IndexScan" not in explain

    def test_cte_shadowing_table_name_is_refused(self, catalog):
        sql = "WITH t AS (SELECT 1 AS id, 2 AS val) SELECT id FROM t WHERE id = 1"
        explain = catalog.explain(sql, physical=True)
        assert "IndexScan" not in explain
        assert catalog.execute(sql).rows == [(1,)]

    def test_create_index_invalidates_plan_cache(self):
        catalog = Catalog()
        catalog.create_table("t", ["id"], [(i,) for i in range(400)])
        sql = "SELECT id FROM t WHERE id = 7"
        assert catalog.execute(sql).rows == [(7,)]  # caches a seq-scan plan
        catalog.create_index("t", "id", HASH)
        explain = catalog.explain(sql, physical=True)
        assert "IndexScan" in explain
        assert catalog.execute(sql, use_cache=False).rows == [(7,)]

    def test_poisoned_index_falls_back(self, catalog):
        catalog.table("t").column_index("id", HASH).poison()
        explain = catalog.explain("SELECT val FROM t WHERE id = 7", physical=True)
        assert "IndexScan" not in explain
        assert catalog.execute("SELECT val FROM t WHERE id = 7", use_cache=False).rows

    def test_stale_index_executor_fallback_matches(self, catalog):
        """An index whose coverage lags the column must not be probed."""
        store = catalog.table("t").column_store("id")
        store.values.append(9999)  # simulate drift: value bypassed append()
        result = catalog.execute("SELECT id FROM t WHERE id = 9999", use_cache=False)
        assert result.rows == [(9999,)]  # linear fallback still finds it

    def test_in_list_uses_hash_index(self, catalog):
        sql = "SELECT id FROM t WHERE id IN (1, 5, 9)"
        explain = catalog.explain(sql, physical=True)
        assert "IndexScan" in explain
        assert catalog.execute(sql).rows == [(1,), (5,), (9,)]

    def test_in_list_with_null_member_is_refused(self, catalog):
        explain = catalog.explain(
            "SELECT id FROM t WHERE id IN (1, NULL)", physical=True
        )
        assert "IndexScan" not in explain

    def test_between_uses_ordered_index(self, catalog):
        sql = "SELECT id FROM t WHERE val BETWEEN 3 AND 5"
        explain = catalog.explain(sql, physical=True)
        assert "IndexScan" in explain
        on = catalog.execute(sql).rows
        off = catalog.execute(sql, optimize=False).rows
        assert on == off

    def test_flipped_literal_comparison(self, catalog):
        sql = "SELECT id FROM t WHERE 30 > val"
        on = catalog.execute(sql).rows
        off = catalog.execute(sql, optimize=False).rows
        assert on == off
        assert "IndexScan" in catalog.explain(sql, physical=True)

    def test_index_scan_preserves_row_order(self, catalog):
        sql = "SELECT id, val FROM t WHERE val < 40"
        on = catalog.execute(sql).rows
        off = catalog.execute(sql, optimize=False).rows
        assert on == off  # positional equality, not just bag equality
