"""Shared pytest fixtures: small catalogs and the paper's query logs."""

from __future__ import annotations

import pytest

from repro.datasets import (
    covid_query_log,
    covid_region_variant_queries,
    load_covid_catalog,
    load_sdss_catalog,
    load_sp500_catalog,
    sdss_query_log,
    sp500_query_log,
)
from repro.engine.catalog import Catalog


@pytest.fixture()
def toy_catalog() -> Catalog:
    """The paper's Figure 2 toy table t(p, a, b) plus a small lookup table."""
    catalog = Catalog()
    catalog.create_table(
        "t",
        ["p", "a", "b"],
        [
            [1, 1, 2],
            [1, 1, 3],
            [2, 2, 2],
            [2, 3, 1],
            [3, 1, 2],
            [3, 2, 2],
            [4, 3, 3],
        ],
    )
    catalog.create_table(
        "labels",
        ["p", "name"],
        [[1, "one"], [2, "two"], [3, "three"], [4, "four"]],
    )
    return catalog


@pytest.fixture()
def fig2_queries() -> list[str]:
    """Q1-Q3 of Figure 2."""
    return [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        "SELECT a, count(*) FROM t GROUP BY a",
    ]


@pytest.fixture()
def fig5_queries() -> list[str]:
    """The Figure 5 variant: Q1/Q2 differ only in the literal compared to a."""
    return [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        "SELECT a, count(*) FROM t GROUP BY a",
    ]


@pytest.fixture(scope="session")
def covid_catalog() -> Catalog:
    return load_covid_catalog()


@pytest.fixture(scope="session")
def sdss_catalog() -> Catalog:
    return load_sdss_catalog()


@pytest.fixture(scope="session")
def sp500_catalog() -> Catalog:
    return load_sp500_catalog()


@pytest.fixture(scope="session")
def covid_log() -> list[str]:
    return covid_query_log()


@pytest.fixture(scope="session")
def covid_v3_log() -> list[str]:
    return covid_query_log() + [covid_region_variant_queries()[1]]


@pytest.fixture(scope="session")
def sdss_log() -> list[str]:
    return sdss_query_log()


@pytest.fixture(scope="session")
def sp500_log() -> list[str]:
    return sp500_query_log()
