"""Tests for Difftree transformation rules (Figure 3's factoring and friends)."""

from __future__ import annotations

import pytest

from repro.difftree import (
    AnyNode,
    OptNode,
    applicable_transformations,
    build_forest,
    can_factor,
    choice_contexts,
    collect_choice_nodes,
    covers,
    factor_common_root,
    find_binding_for,
    flatten_nested_any,
    inline_singleton_any,
    merge_nodes,
    normalize_difftree,
    parse_query_log,
    toggle_opt_default,
)
from repro.errors import TransformationError
from repro.sql.ast_nodes import BinaryOp, ColumnRef, Literal
from repro.sql.parser import parse_select


class TestFactorCommonRoot:
    def test_figure3_a_to_b(self, fig2_queries):
        """Factoring the '=' above the ANY yields independent operand choices."""
        q1, q2 = parse_query_log(fig2_queries[:2])
        tree = merge_nodes(q1, q2)
        any_node = collect_choice_nodes(tree)[0]
        assert can_factor(any_node)

        factored = factor_common_root(tree, any_node.choice_id)
        contexts = choice_contexts(factored)
        kinds = sorted(context.alternative_kind for context in contexts)
        assert kinds == ["column", "numeric_literal"]

    def test_factored_tree_still_covers_inputs(self, fig2_queries):
        q1, q2 = parse_query_log(fig2_queries[:2])
        tree = merge_nodes(q1, q2)
        any_node = collect_choice_nodes(tree)[0]
        factored = factor_common_root(tree, any_node.choice_id)
        assert covers(factored, [q1, q2])

    def test_factored_tree_generalizes_beyond_inputs(self, fig2_queries):
        """Figure 3(b) can express SELECT p, count(*) WHERE b = 1 — 3(a) cannot."""
        q1, q2 = parse_query_log(fig2_queries[:2])
        unfactored = merge_nodes(q1, q2)
        any_node = collect_choice_nodes(unfactored)[0]
        factored = factor_common_root(unfactored, any_node.choice_id)
        generalized = parse_select("SELECT p, count(*) FROM t WHERE b = 1 GROUP BY p")
        assert find_binding_for(factored, generalized) is not None
        assert find_binding_for(unfactored, generalized) is None

    def test_identical_child_positions_stay_concrete(self):
        a = parse_select("SELECT x FROM t WHERE a = 1")
        b = parse_select("SELECT x FROM t WHERE a = 2")
        # Literal-only difference already merges in place; build an artificial
        # ANY over the predicates to factor instead.
        pred_a = a.where
        pred_b = b.where
        any_node = AnyNode(alternatives=[pred_a, pred_b])
        factored = factor_common_root(any_node, any_node.choice_id)
        assert isinstance(factored, BinaryOp)
        assert isinstance(factored.left, ColumnRef)  # the shared 'a' stays concrete
        assert isinstance(factored.right, AnyNode)

    def test_cannot_factor_mismatched_roots(self):
        any_node = AnyNode(
            alternatives=[
                parse_select("SELECT a FROM t").where or Literal(1),
                BinaryOp(op="<", left=ColumnRef("a"), right=Literal(2)),
            ]
        )
        assert not can_factor(any_node)
        with pytest.raises(TransformationError):
            factor_common_root(any_node, any_node.choice_id)

    def test_cannot_factor_leaf_alternatives(self):
        any_node = AnyNode(alternatives=[Literal(1), Literal(2)])
        assert not can_factor(any_node)

    def test_sdss_factoring_produces_range_pairs(self, sdss_log):
        forest = build_forest(sdss_log, strategy="merged")
        tree = forest.trees[0]
        for transformation in applicable_transformations(tree):
            if transformation.rule == "factor_common_root":
                tree = transformation(tree)
        contexts = choice_contexts(tree)
        range_members = [context for context in contexts if context.is_range_member]
        attributes = {context.target_attribute for context in range_members}
        assert attributes == {"ra", "dec"}
        assert covers(tree, forest.queries)


class TestCleanupRules:
    def test_inline_singleton_any(self):
        tree = AnyNode(alternatives=[Literal(1)])
        assert inline_singleton_any(tree) == Literal(1)

    def test_flatten_nested_any(self):
        nested = AnyNode(alternatives=[AnyNode(alternatives=[Literal(1), Literal(2)]), Literal(3)])
        flattened = flatten_nested_any(nested)
        assert isinstance(flattened, AnyNode)
        assert flattened.cardinality == 3

    def test_flatten_dedupes(self):
        nested = AnyNode(alternatives=[AnyNode(alternatives=[Literal(1), Literal(2)]), Literal(2)])
        assert flatten_nested_any(nested).cardinality == 2

    def test_normalize_combines_both(self):
        nested = AnyNode(alternatives=[AnyNode(alternatives=[Literal(1)])])
        assert normalize_difftree(nested) == Literal(1)

    def test_toggle_opt_default(self):
        q1 = parse_select("SELECT a FROM t WHERE a = 1")
        q2 = parse_select("SELECT a FROM t")
        tree = merge_nodes(q1, q2)
        opt = collect_choice_nodes(tree)[0]
        assert isinstance(opt, OptNode)
        toggled = toggle_opt_default(tree, opt.choice_id)
        new_opt = collect_choice_nodes(toggled)[0]
        assert new_opt.default_on != opt.default_on
        assert new_opt.choice_id == opt.choice_id


class TestApplicableTransformations:
    def test_enumeration_contains_factor_and_toggle(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="merged")
        rules = {t.rule for t in applicable_transformations(forest.trees[0])}
        assert "toggle_opt_default" in rules

    def test_no_transformations_for_choice_free_tree(self):
        tree = parse_select("SELECT a FROM t")
        assert applicable_transformations(tree) == []

    def test_transformation_describe(self, fig2_queries):
        q1, q2 = parse_query_log(fig2_queries[:2])
        tree = merge_nodes(q1, q2)
        transformation = applicable_transformations(tree)[0]
        assert "@" in transformation.describe()
