"""Tests for the search layer: space, MCTS, greedy, exhaustive."""

from __future__ import annotations

import pytest

from repro.cost import CostModel
from repro.errors import SearchError
from repro.interface import InteractionType
from repro.mapping import MappingConfig
from repro.search import (
    MctsSearcher,
    SearchSpace,
    exhaustive_search,
    greedy_search,
    mcts_search,
)


@pytest.fixture()
def sdss_space(sdss_catalog, sdss_log):
    return SearchSpace(
        queries=sdss_log,
        table_schemas=sdss_catalog.schemas(),
        mapping_config=MappingConfig(name="sdss"),
        cost_model=CostModel(),
    )


def make_space(catalog, queries, **kwargs):
    return SearchSpace(
        queries=queries,
        table_schemas=catalog.schemas(),
        mapping_config=MappingConfig(),
        cost_model=CostModel(),
        **kwargs,
    )


class TestSearchSpace:
    def test_initial_state_is_per_query(self, sdss_space, sdss_log):
        assert sdss_space.initial_state.tree_count == len(sdss_log)

    def test_actions_include_merges(self, sdss_space):
        actions = sdss_space.actions(sdss_space.initial_state)
        assert any(action.kind == "merge" for action in actions)

    def test_transformations_appear_after_merge(self, sdss_space):
        merged = sdss_space.initial_state.merge_trees(0, 1)
        actions = sdss_space.actions(merged)
        assert any(action.kind == "transform" for action in actions)

    def test_evaluation_is_cached(self, sdss_space):
        state = sdss_space.initial_state
        first = sdss_space.evaluate(state)
        evaluations = sdss_space.stats.evaluations
        second = sdss_space.evaluate(state)
        assert first is second
        assert sdss_space.stats.evaluations == evaluations
        assert sdss_space.stats.cache_hits >= 1

    def test_dissimilar_trees_not_merged(self, covid_catalog):
        space = make_space(
            covid_catalog,
            [
                "SELECT date, sum(cases) AS c FROM covid_cases GROUP BY date",
                "SELECT state, region FROM state_regions",
            ],
        )
        actions = space.actions(space.initial_state)
        assert not [a for a in actions if a.kind == "merge"]

    def test_empty_query_log_rejected(self, covid_catalog):
        with pytest.raises(SearchError):
            make_space(covid_catalog, [])


class TestStrategies:
    def test_mcts_finds_pan_zoom_interface(self, sdss_space):
        result = mcts_search(sdss_space, iterations=60, seed=1)
        assert result.strategy == "mcts"
        assert result.interface.interactions
        assert result.interface.interactions[0].interaction_type is InteractionType.PAN_ZOOM
        assert result.forest.covers_all()

    def test_mcts_never_worse_than_initial(self, sdss_space):
        initial_cost = sdss_space.evaluate(sdss_space.initial_state).total_cost
        result = mcts_search(sdss_space, iterations=40, seed=3)
        assert result.total_cost <= initial_cost

    def test_mcts_deterministic_for_seed(self, sdss_catalog, sdss_log):
        costs = []
        for _ in range(2):
            space = make_space(sdss_catalog, sdss_log)
            costs.append(mcts_search(space, iterations=30, seed=7).total_cost)
        assert costs[0] == pytest.approx(costs[1])

    def test_mcts_requires_iterations(self, sdss_space):
        with pytest.raises(SearchError):
            MctsSearcher(sdss_space, iterations=0)

    def test_greedy_runs_and_reports_trace(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log[:3])
        result = greedy_search(space)
        assert result.strategy == "greedy"
        assert result.total_cost <= space.evaluate(space.initial_state).total_cost
        assert isinstance(result.action_trace, list)

    def test_exhaustive_at_least_as_good_as_greedy(self, sdss_catalog, sdss_log):
        greedy_space = make_space(sdss_catalog, sdss_log)
        greedy_result = greedy_search(greedy_space)
        exhaustive_space = make_space(sdss_catalog, sdss_log)
        exhaustive_result = exhaustive_search(exhaustive_space, max_depth=3, max_states=200)
        assert exhaustive_result.total_cost <= greedy_result.total_cost + 1e-9

    def test_mcts_matches_exhaustive_on_small_log(self, sdss_catalog, sdss_log):
        exhaustive_space = make_space(sdss_catalog, sdss_log)
        best = exhaustive_search(exhaustive_space, max_depth=3, max_states=200).total_cost
        mcts_space = make_space(sdss_catalog, sdss_log)
        found = mcts_search(mcts_space, iterations=80, seed=1).total_cost
        assert found <= best + 1e-9

    def test_mcts_explores_fewer_candidates_than_exhaustive(self, covid_catalog, covid_log):
        # On the larger COVID log exhaustive enumeration visits far more
        # distinct candidates than a short MCTS run.
        exhaustive_space = make_space(covid_catalog, covid_log[:4])
        exhaustive_search(exhaustive_space, max_depth=3, max_states=120)
        mcts_space = make_space(covid_catalog, covid_log[:4])
        mcts_search(mcts_space, iterations=20, seed=1)
        assert mcts_space.stats.evaluations < exhaustive_space.stats.evaluations

    def test_greedy_gets_stuck_on_sdss(self, sdss_catalog, sdss_log):
        """Greedy cannot cross the temporarily-worse merge step on SDSS."""
        greedy_space = make_space(sdss_catalog, sdss_log)
        greedy_result = greedy_search(greedy_space)
        mcts_space = make_space(sdss_catalog, sdss_log)
        mcts_result = mcts_search(mcts_space, iterations=80, seed=1)
        assert mcts_result.total_cost < greedy_result.total_cost
