"""Tests for scalar functions and aggregate accumulators."""

from __future__ import annotations

import math

import pytest

from repro.errors import ExecutionError
from repro.engine.aggregates import is_aggregate_function, make_accumulator
from repro.engine.functions import call_scalar_function, is_scalar_function


class TestScalarFunctions:
    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("abs", [-3], 3),
            ("round", [3.456, 1], 3.5),
            ("floor", [2.7], 2),
            ("ceil", [2.1], 3),
            ("sqrt", [16], 4.0),
            ("power", [2, 10], 1024.0),
            ("mod", [10, 3], 1),
            ("sign", [-5], -1),
            ("lower", ["AbC"], "abc"),
            ("upper", ["abc"], "ABC"),
            ("length", ["hello"], 5),
            ("trim", ["  hi  "], "hi"),
            ("substr", ["abcdef", 2, 3], "bcd"),
            ("replace", ["aXbX", "X", "-"], "a-b-"),
            ("left", ["abcdef", 2], "ab"),
            ("right", ["abcdef", 2], "ef"),
            ("coalesce", [None, None, 7], 7),
            ("nullif", [5, 5], None),
            ("ifnull", [None, 3], 3),
            ("date", ["2021-12-01T10:00:00"], "2021-12-01"),
            ("year", ["2021-12-01"], 2021),
            ("month", ["2021-12-01"], 12),
            ("day", ["2021-12-25"], 25),
            ("strftime", ["%Y-%m", "2021-12-25"], "2021-12"),
            ("date_trunc", ["month", "2021-12-25"], "2021-12-01"),
            ("concat", ["a", None, "b"], "ab"),
        ],
    )
    def test_function_values(self, name, args, expected):
        assert call_scalar_function(name, args) == expected

    def test_null_propagation(self):
        assert call_scalar_function("abs", [None]) is None
        assert call_scalar_function("lower", [None]) is None

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            call_scalar_function("not_a_function", [1])

    def test_bad_arguments_raise_execution_error(self):
        with pytest.raises(ExecutionError):
            call_scalar_function("sqrt", [-1])

    def test_is_scalar_function(self):
        assert is_scalar_function("LOWER")
        assert not is_scalar_function("count")


class TestAggregates:
    def run(self, name, values, **kwargs):
        acc = make_accumulator(name, **kwargs)
        for value in values:
            acc.add(value)
        return acc.result()

    def test_count_ignores_nulls(self):
        assert self.run("count", [1, None, 2]) == 2

    def test_count_star_counts_rows(self):
        acc = make_accumulator("count", is_star=True)
        for _ in range(5):
            acc.add(1)
        assert acc.result() == 5
        assert acc.counts_rows is True

    def test_sum_and_empty_sum(self):
        assert self.run("sum", [1, 2, 3]) == 6
        assert self.run("sum", []) is None
        assert self.run("sum", [None]) is None

    def test_avg(self):
        assert self.run("avg", [2, 4, None]) == 3.0
        assert self.run("avg", []) is None

    def test_min_max(self):
        assert self.run("min", [3, 1, None, 2]) == 1
        assert self.run("max", [3, 1, None, 2]) == 3

    def test_variance_and_stddev(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        variance = self.run("variance", values)
        stddev = self.run("stddev", values)
        assert variance == pytest.approx(4.571428, rel=1e-5)
        assert stddev == pytest.approx(math.sqrt(variance))

    def test_variance_requires_two_values(self):
        assert self.run("variance", [1.0]) is None

    def test_median_odd_and_even(self):
        assert self.run("median", [5, 1, 3]) == 3
        assert self.run("median", [1, 2, 3, 4]) == 2.5
        assert self.run("median", []) is None

    def test_distinct_wrapper(self):
        assert self.run("count", [1, 1, 2, 2, 3], distinct=True) == 3
        assert self.run("sum", [5, 5, 5], distinct=True) == 5

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ExecutionError):
            make_accumulator("frobnicate")

    def test_is_aggregate_function(self):
        assert is_aggregate_function("AVG")
        assert not is_aggregate_function("lower")
