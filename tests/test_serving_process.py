"""Process execution tier and asyncio frontend tests.

Four families, mirroring the process-tier shipping contract
(``docs/SERVING.md``):

* **Snapshot shipping** — a pickled :class:`CatalogSnapshot` must survive the
  process boundary *warm*: same data version, same column statistics (shipped
  ready-to-use, never recomputed worker-side), same query results.  Verified
  both in-process and in a real child interpreter.
* **Worker cache lifecycle** — workers cache snapshots by
  ``(catalog_id, data_version)`` in a bounded LRU; a catalog version bump
  ships the new version and evicts exactly the stale entry once capacity
  forces it out — never the live one.
* **Determinism** — interfaces generated inside worker processes (snapshot
  shipped, generation executed there) must fingerprint-match the in-process
  serial pipeline, across 8 concurrent sessions.
* **Async frontend** — stable tenant→shard routing, shard-count validation,
  and a 256-user storm on one event loop over 4 shards that must complete
  with zero failures in process mode.

The process-tier tests spawn real worker processes (seconds, not
milliseconds); they are sized so the whole file stays well inside the CI
300s cap.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.datasets import covid_query_log, load_covid_catalog
from repro.errors import AdmissionError, WorkerError
from repro.pipeline import PipelineConfig, generate_interface
from repro.serving import (
    AsyncInterfaceService,
    AsyncLoadGenerator,
    InterfaceService,
    ProcessExecutionTier,
    ServiceConfig,
    WorkloadMix,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

GENERATION_CONFIG = PipelineConfig(method="greedy", greedy_max_steps=4)


def snapshot_is_warm(snapshot) -> bool:
    """True when every column ships with its statistics block materialized."""
    return all(
        table.column_store(column)._stats is not None
        for table in (snapshot.table(name) for name in snapshot.table_names())
        for column in table.column_names
    )


class TestSnapshotShipping:
    def test_pickle_round_trip_preserves_version_stats_and_results(self):
        query = covid_query_log()[0]
        snapshot = load_covid_catalog().snapshot()
        local = snapshot.execute(query)

        clone = pickle.loads(pickle.dumps(snapshot))

        assert clone.catalog_id == snapshot.catalog_id
        assert clone.data_version() == snapshot.data_version()
        # __getstate__ warms the tables before serializing, so the clone's
        # statistics arrive materialized (no worker-side O(data) rebuild)
        # and identical to the shipper's.
        assert snapshot_is_warm(clone)
        for name in snapshot.table_names():
            original, shipped = snapshot.table(name), clone.table(name)
            for column in original.column_names:
                ours, theirs = (
                    original.column_store(column).stats(),
                    shipped.column_store(column).stats(),
                )
                assert (ours.minimum, ours.maximum) == (theirs.minimum, theirs.maximum)
                assert original.null_count(column) == shipped.null_count(column)
        assert clone.execute(query).rows == local.rows

    def test_round_trip_in_real_subprocess(self, tmp_path):
        """A child interpreter unpickles the snapshot warm and agrees on rows."""
        query = covid_query_log()[0]
        snapshot = load_covid_catalog().snapshot()
        local = snapshot.execute(query)
        blob = tmp_path / "snapshot.pkl"
        blob.write_bytes(pickle.dumps(snapshot))

        child = (
            "import json, pickle, sys\n"
            "snapshot = pickle.load(open(sys.argv[1], 'rb'))\n"
            "warm = all(\n"
            "    table.column_store(column)._stats is not None\n"
            "    for table in (snapshot.table(n) for n in snapshot.table_names())\n"
            "    for column in table.column_names\n"
            ")\n"
            "result = snapshot.execute(sys.argv[2])\n"
            "print(json.dumps({\n"
            "    'warm': warm,\n"
            "    'data_version': repr(snapshot.data_version()),\n"
            "    'rows': [list(row) for row in result.rows],\n"
            "}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", child, str(blob), query],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        reply = json.loads(completed.stdout)
        assert reply["warm"] is True
        assert reply["data_version"] == repr(snapshot.data_version())
        assert reply["rows"] == [list(row) for row in local.rows]


class TestWorkerSnapshotCache:
    def test_version_bump_ships_new_and_evicts_exactly_the_stale_entry(self):
        query = "SELECT COUNT(*) AS n FROM covid_cases"
        catalog = load_covid_catalog()
        with ProcessExecutionTier(processes=1, snapshot_cache_capacity=1) as tier:
            old = catalog.snapshot()
            old_key = (old.catalog_id, old.data_version())
            first = tier.submit_execute(old, query).result(timeout=120)
            assert tier.worker_cached_fingerprints(0) == [old_key]

            catalog.append_rows("covid_cases", [["ZZ", "2021-12-31", 1]])
            new = catalog.snapshot()
            new_key = (new.catalog_id, new.data_version())
            assert new_key != old_key
            second = tier.submit_execute(new, query).result(timeout=120)

            # Capacity 1: admitting the new version evicted exactly the
            # stale key; the live one stays resident for re-use.
            assert tier.worker_cached_fingerprints(0) == [new_key]
            assert tier.stats.snapshot_ships == 2
            # The bumped version really reached the worker — a stale cached
            # snapshot answering would miss the appended row.
            assert second.rows[0][0] == first.rows[0][0] + 1
            third = tier.submit_execute(new, query).result(timeout=120)
            assert third.rows == second.rows
            assert tier.stats.snapshot_ships == 2  # re-used, not re-shipped

    def test_both_versions_stay_resident_under_larger_capacity(self):
        """Invalidation is lazy: old versions are LRU-evicted, not purged."""
        query = covid_query_log()[0]
        catalog = load_covid_catalog()
        with ProcessExecutionTier(processes=1, snapshot_cache_capacity=4) as tier:
            old = catalog.snapshot()
            tier.submit_execute(old, query).result(timeout=120)
            catalog.append_rows("covid_cases", [["ZZ", "2021-12-31", 1]])
            new = catalog.snapshot()
            tier.submit_execute(new, query).result(timeout=120)
            cached = tier.worker_cached_fingerprints(0)
            assert (old.catalog_id, old.data_version()) in cached
            assert (new.catalog_id, new.data_version()) in cached


class TestProcessDeterminism:
    def test_eight_process_sessions_match_serial_fingerprint(self):
        queries = covid_query_log()[:4]
        serial = generate_interface(queries, load_covid_catalog(), GENERATION_CONFIG)
        serial_fingerprint = serial.interface.fingerprint()

        config = ServiceConfig(
            max_workers=8,
            profile_workers=2,
            max_sessions=16,
            max_pending=64,
            execution_tier="process",
            worker_processes=2,
        )
        with InterfaceService(load_covid_catalog(), config) as service:
            sessions = [service.create_session(f"det-{i}") for i in range(8)]
            futures = [
                service.submit_generate(s.session_id, queries, GENERATION_CONFIG)
                for s in sessions
            ]
            results = [future.result(timeout=300) for future in futures]

        assert len(results) == 8
        for result in results:
            assert result.interface.fingerprint() == serial_fingerprint
            assert result.cost.as_dict() == serial.cost.as_dict()


class TestWorkerSizing:
    def test_explicit_override_wins(self):
        from repro.serving.workers import default_worker_processes

        assert default_worker_processes(2) == 2
        assert default_worker_processes(13) == 13  # overrides are not clamped

    def test_auto_sizing_clamps_to_machine(self, monkeypatch):
        import os

        from repro.serving.workers import (
            MAX_AUTO_WORKER_PROCESSES,
            default_worker_processes,
        )

        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_worker_processes(None) == 3
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_worker_processes(None) == MAX_AUTO_WORKER_PROCESSES
        monkeypatch.setattr(os, "cpu_count", lambda: None)  # unknown machine
        assert default_worker_processes(None) == 1

    def test_tier_resolves_none_to_machine_size(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        with ProcessExecutionTier() as tier:
            assert tier.processes == 1
            assert tier.stats_snapshot()["workers"] == 1

    def test_service_records_resolved_worker_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        config = ServiceConfig(execution_tier="process")
        assert config.worker_processes is None  # auto-size is the default
        with InterfaceService(load_covid_catalog(), config) as service:
            stats = service.stats_snapshot()
        assert stats["worker_processes"] == 1

    def test_thread_tier_reports_no_worker_processes(self):
        with InterfaceService(load_covid_catalog(), ServiceConfig()) as service:
            assert service.stats_snapshot()["worker_processes"] is None


class TestIndexedSnapshotShipping:
    def test_index_scan_executes_in_real_worker_process(self):
        """A shipped snapshot carries sealed indexes the worker can probe."""
        from repro.engine.catalog import Catalog

        catalog = Catalog()
        catalog.create_table(
            "events", ["id", "val"], [(i, i * 3) for i in range(2000)]
        )
        catalog.create_index("events", "id", "hash")
        snapshot = catalog.snapshot()
        # The plan compiled worker-side must be an index scan (same optimizer,
        # same catalog state) — proven locally via EXPLAIN, then the worker
        # must agree on the rows.
        assert "IndexScan" in catalog.explain(
            "SELECT val FROM events WHERE id = 1234", physical=True
        )
        with ProcessExecutionTier(processes=1) as tier:
            result = tier.execute(snapshot, "SELECT val FROM events WHERE id = 1234")
            assert result.rows == [(3702,)]
            # Second fingerprint use must hit the worker's snapshot cache.
            tier.execute(snapshot, "SELECT val FROM events WHERE id = 7")
            assert tier.stats_snapshot()["worker_snapshot_cache_hits"] >= 1


class TestTierRobustness:
    """Shutdown-while-inflight and respawn-storm races (PR 8 satellites)."""

    def test_shutdown_while_inflight_never_hangs(self):
        """Concurrent shutdown during dispatched tasks completes promptly."""
        snapshot = load_covid_catalog().snapshot()
        queries = covid_query_log()[:4]
        tier = ProcessExecutionTier(processes=2)
        futures = [
            tier.submit_execute(snapshot, queries[i % len(queries)], use_cache=False)
            for i in range(12)
        ]
        finished = threading.Event()

        def close() -> None:
            tier.shutdown(wait=True)
            finished.set()

        closer = threading.Thread(target=close, name="closer")
        closer.start()
        # The join timeouts inside shutdown() bound it; 90s of slack covers
        # slow CI without masking a real hang.
        assert finished.wait(timeout=90), "shutdown(wait=True) hung past the join timeout"
        closer.join()
        # Every future resolved: a row count on success, a typed error if
        # the shutdown raced its dispatch.
        for future in futures:
            try:
                assert future.result(timeout=5).row_count >= 0
            except WorkerError:
                pass

    def test_respawn_storm_keeps_tier_serving(self):
        """Back-to-back worker kills: the tier must keep answering correctly."""
        snapshot = load_covid_catalog().snapshot()
        query = covid_query_log()[0]
        baseline = snapshot.execute(query).rows
        with ProcessExecutionTier(processes=2) as tier:
            for _ in range(5):
                # Worker 0 is the light-reserved worker every read routes
                # to — killing it guarantees each round exercises the
                # die → respawn → retry path rather than dodging it.
                tier._handles[0].process.kill()
                result = tier.submit_execute(snapshot, query, use_cache=False).result(
                    timeout=120
                )
                assert result.rows == baseline
            stats = tier.stats_snapshot()
            assert stats["workers_respawned"] >= 5
            # Idempotent retries absorbed the kills: the storm saw worker
            # deaths, not caller-visible failures.
            assert stats["tasks_retried"] >= 1

    def test_respawn_escalates_to_kill_when_join_times_out(self):
        """A worker that survives terminate()+join is SIGKILLed, not leaked."""

        class StubbornProcess:
            """Stays 'alive' through terminate/join until kill() lands."""

            def __init__(self) -> None:
                self.killed = False
                self.terminated = False

            def is_alive(self) -> bool:
                return not self.killed

            def terminate(self) -> None:
                self.terminated = True

            def kill(self) -> None:
                self.killed = True

            def join(self, timeout=None) -> None:
                pass

        with ProcessExecutionTier(processes=1) as tier:
            real = tier._handles[0].process
            stub = StubbornProcess()
            tier._handles[0].process = stub
            try:
                tier._respawn(0)
                assert stub.terminated and stub.killed
                assert tier.stats_snapshot()["respawn_escalations"] == 1
                # The replacement worker serves.
                snapshot = load_covid_catalog().snapshot()
                result = tier.execute(snapshot, "SELECT COUNT(*) AS n FROM covid_cases")
                assert result.row_count == 1
            finally:
                # The displaced real process lost its parent pipe end when
                # _respawn closed it; reap it so the test leaks nothing.
                real.terminate()
                real.join(timeout=10)


class TestAsyncFrontend:
    def test_tenant_routing_is_stable_and_spreads(self):
        frontend = AsyncInterfaceService(
            [load_covid_catalog() for _ in range(4)],
            ServiceConfig(shards=4),
        )
        try:
            routes = {f"tenant-{i}": frontend.shard_for(f"tenant-{i}") for i in range(64)}
            # Stable: same tenant, same shard, every time.
            for tenant, shard in routes.items():
                assert frontend.shard_for(tenant) == shard
            # Spreads: 64 tenants must land on more than one shard.
            assert len(set(routes.values())) == 4
        finally:
            frontend.close_sync()

    def test_shard_count_must_match_catalog_count(self):
        with pytest.raises(AdmissionError):
            AsyncInterfaceService(
                [load_covid_catalog(), load_covid_catalog()],
                ServiceConfig(shards=3),
            )

    def test_storm_256_async_users_process_tier_zero_failures(self):
        log = covid_query_log()
        frontend = AsyncInterfaceService(
            [load_covid_catalog() for _ in range(4)],
            ServiceConfig(
                max_workers=8,
                profile_workers=2,
                max_sessions=128,
                max_pending=1024,
                execution_tier="process",
                worker_processes=2,
                shards=4,
            ),
        )
        try:
            generator = AsyncLoadGenerator(
                frontend,
                read_queries=log[:6],
                generate_logs=[log[:3], log[1:4]],
                write_table="covid_cases",
                write_row=lambda user, i: [f"Z{user}", f"2021-12-{i % 28 + 1:02d}", i],
                mix=WorkloadMix(read=0.8, write=0.15, generate=0.05),
                generation_config=GENERATION_CONFIG,
                seed=20260727,
            )
            report = generator.run_sync(users=256, ops_per_user=4)
            stats = frontend.stats_snapshot()
        finally:
            frontend.close_sync()

        assert len(report.ops) == 256 * 4
        assert report.failures == [], [op.error for op in report.failures[:5]]
        assert stats["sessions_opened"] == 256
        # All four shards share one tier; shipping happened and paid off.
        assert stats["snapshot_ships"] > 0
        assert stats["worker_snapshot_cache_hits"] > 0
