"""Differential tests for incremental candidate evaluation.

The search layer evaluates candidates incrementally: per-tree pieces
(profiles, chart templates, widget-mapping pieces, coverage checks, data
profiles) are cached by interned tree signature and reused across the forest
states a search visits.  The contract — mirroring the optimizer on-vs-off
pattern of ``docs/TESTING.md`` — is that an incremental evaluation is
*indistinguishable* from a from-scratch one:

for any forest reached by any action sequence, a warm ``SearchSpace`` (full
caches, arbitrary evaluation history) must produce exactly the same
``CostBreakdown`` and the same interface as a cold ``SearchSpace`` that has
never evaluated anything else.

The property test drives seeded random action walks; regression tests cover
the satellite behaviours (beam determinism, stats split, cache bounds).
"""

from __future__ import annotations

import random

import pytest

from repro.cost import CostModel
from repro.mapping import MappingConfig
from repro.search import SearchSpace, beam_search, greedy_search, mcts_search
from repro.search.space import TRANSFORMATION_CACHE_CAPACITY


def make_space(schema_catalog, queries, **kwargs):
    return SearchSpace(
        queries=queries,
        table_schemas=schema_catalog.schemas(),
        mapping_config=MappingConfig(),
        cost_model=CostModel(),
        **kwargs,
    )


def interface_dump(interface) -> tuple:
    """Canonical structural dump of an interface for exact comparison.

    Choice ids are normalized by order of first appearance: they are gensym'd
    allocation labels (``any_417``), so two evaluations of the same structure
    legitimately differ in the numbers while being the same interface — the
    forest-level evaluation cache has always reused structurally equal states
    wholesale, and each interface stays self-consistent with the forest it
    embeds.  Everything else must match byte for byte.
    """
    renames: dict[str, str] = {}

    def rename(choice_id: str) -> str:
        if choice_id not in renames:
            renames[choice_id] = f"c#{len(renames) + 1}"
        return renames[choice_id]

    return (
        tuple(
            (
                vis.vis_id,
                vis.chart_type.value,
                tuple(encoding.describe() for encoding in vis.encodings),
                vis.tree_index,
                vis.title,
                vis.width,
                vis.height,
            )
            for vis in interface.visualizations
        ),
        tuple(
            (
                widget.widget_id,
                widget.widget_type.value,
                widget.label,
                tuple((b.tree_index, rename(b.choice_id)) for b in widget.bindings),
                tuple(str(option) for option in widget.options),
                widget.domain,
                str(widget.default),
            )
            for widget in interface.widgets
        ),
        tuple(
            (
                interaction.interaction_id,
                interaction.interaction_type.value,
                interaction.source_vis_id,
                interaction.attribute,
                interaction.secondary_attribute,
                tuple((b.tree_index, rename(b.choice_id)) for b in interaction.bindings),
                tuple(interaction.target_vis_ids),
            )
            for interaction in interface.interactions
        ),
    )


def random_walk(space, rng, steps):
    """Apply up to ``steps`` random actions; yield (forest, action) pairs."""
    forest = space.initial_state
    for _ in range(steps):
        actions = space.actions(forest)
        if not actions:
            return
        action = rng.choice(actions)
        forest = space.apply(forest, action)
        yield forest, action


class TestIncrementalEqualsFull:
    """Property: warm-cache evaluation == cold-cache evaluation, exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_covid_random_walks(self, covid_catalog, covid_log, seed):
        rng = random.Random(seed)
        warm = make_space(covid_catalog, covid_log[:4], catalog=covid_catalog)
        # Warm the caches with an unrelated evaluation history first.
        mcts_search(warm, iterations=8, seed=seed)
        for forest, action in random_walk(warm, rng, steps=4):
            incremental = warm.evaluate(forest, changed=action.touched, use_cache=False)
            cold = make_space(covid_catalog, covid_log[:4], catalog=covid_catalog)
            scratch = cold.evaluate(forest)
            assert incremental.cost.as_dict() == scratch.cost.as_dict()
            assert interface_dump(incremental.interface) == interface_dump(scratch.interface)
            assert incremental.data_rows == scratch.data_rows

    @pytest.mark.parametrize("seed", range(4))
    def test_sdss_random_walks(self, sdss_catalog, sdss_log, seed):
        rng = random.Random(seed)
        warm = make_space(sdss_catalog, sdss_log)
        mcts_search(warm, iterations=10, seed=seed)
        for forest, action in random_walk(warm, rng, steps=5):
            incremental = warm.evaluate(forest, changed=action.touched, use_cache=False)
            cold = make_space(sdss_catalog, sdss_log)
            scratch = cold.evaluate(forest)
            assert incremental.cost.as_dict() == scratch.cost.as_dict()
            assert interface_dump(incremental.interface) == interface_dump(scratch.interface)

    def test_per_tree_components_recompose(self, covid_catalog, covid_log):
        """The cached per-tree components sum back to the breakdown's terms."""
        space = make_space(covid_catalog, covid_log[:4])
        result = greedy_search(space)
        breakdown = result.cost
        assert breakdown.per_tree is not None
        assert len(breakdown.per_tree) == result.forest.tree_count
        # Interaction decomposes exactly; visualization decomposes up to the
        # cross-tree duplicate penalty (>= the per-tree sum).
        assert sum(c.interaction for c in breakdown.per_tree) == pytest.approx(
            breakdown.interaction
        )
        assert sum(c.visualization for c in breakdown.per_tree) <= breakdown.visualization + 1e-9
        missing = sum(c.queries_missing for c in breakdown.per_tree)
        from repro.cost.expressiveness import MISSING_QUERY_PENALTY

        assert breakdown.expressiveness == pytest.approx(missing * MISSING_QUERY_PENALTY)

    def test_incremental_reuse_is_counted(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log)
        mcts_search(space, iterations=20, seed=1)
        # Most per-tree evaluations must have been reused, not recomputed:
        # that is the whole point of the incremental path.
        assert space.stats.tree_evals_reused > space.stats.tree_evals_computed


class TestActionDeltas:
    def test_merge_touches_merged_slot(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log[:4])
        merges = [a for a in space.actions(space.initial_state) if a.kind == "merge"]
        assert merges
        for action in merges:
            result = space.apply(space.initial_state, action)
            assert len(action.touched) == 1
            (touched,) = action.touched
            # Every tree except the touched slot is shared by identity.
            source_ids = {id(tree) for tree in space.initial_state.trees}
            for index, tree in enumerate(result.trees):
                if index == touched:
                    assert id(tree) not in source_ids
                else:
                    assert id(tree) in source_ids

    def test_transform_touches_transformed_slot(self, sdss_catalog, sdss_log):
        space = make_space(sdss_catalog, sdss_log)
        forest = space.initial_state.merge_trees(0, 1)
        transforms = [a for a in space.actions(forest) if a.kind == "transform"]
        assert transforms
        for action in transforms:
            result = space.apply(forest, action)
            (touched,) = action.touched
            for index, tree in enumerate(result.trees):
                if index != touched:
                    assert tree is forest.trees[index]


class TestBeamSearch:
    def test_beam_deterministic(self, sdss_catalog, sdss_log):
        costs = []
        dumps = []
        for _ in range(2):
            space = make_space(sdss_catalog, sdss_log)
            result = beam_search(space, width=3, max_depth=6)
            costs.append(result.total_cost)
            dumps.append(interface_dump(result.interface))
        assert costs[0] == costs[1]
        assert dumps[0] == dumps[1]

    def test_beam_never_worse_than_initial(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log[:4])
        initial_cost = space.evaluate(space.initial_state).total_cost
        result = beam_search(space)
        assert result.strategy == "beam"
        assert result.total_cost <= initial_cost

    def test_beam_escapes_greedy_local_minimum(self, sdss_catalog, sdss_log):
        """On SDSS the winning interface needs a temporarily-worse merge."""
        greedy_space = make_space(sdss_catalog, sdss_log)
        greedy_result = greedy_search(greedy_space)
        beam_space = make_space(sdss_catalog, sdss_log)
        beam_result = beam_search(beam_space, width=4, max_depth=6)
        assert beam_result.total_cost < greedy_result.total_cost

    def test_beam_width_one_requires_positive_width(self, covid_catalog, covid_log):
        from repro.errors import SearchError

        space = make_space(covid_catalog, covid_log[:3])
        with pytest.raises(SearchError):
            beam_search(space, width=0)

    def test_pipeline_beam_method(self, covid_catalog, covid_log):
        from repro.pipeline import PipelineConfig, generate_interface

        result = generate_interface(
            covid_log[:4], covid_catalog, PipelineConfig(method="beam")
        )
        assert result.strategy == "beam"
        assert result.interface.visualization_count >= 1


class TestStatsSplit:
    def test_executed_vs_cache_hits(self, covid_catalog, covid_log):
        covid_catalog.clear_caches()  # the session fixture arrives pre-warmed
        space = make_space(covid_catalog, covid_log[:4], catalog=covid_catalog)
        mcts_search(space, iterations=20, seed=1)
        stats = space.stats
        # Distinct default queries execute once; the repeats are either
        # catalog result-cache hits or per-tree profile-cache hits.
        assert stats.queries_executed > 0
        assert stats.queries_executed < stats.query_cache_hits + stats.profile_cache_hits
        total_profiled = (
            stats.queries_executed + stats.query_cache_hits + stats.profile_cache_hits
        )
        assert total_profiled >= stats.evaluations  # >= one tree per evaluation

    def test_no_catalog_means_no_query_stats(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log[:3])
        greedy_search(space)
        assert space.stats.queries_executed == 0
        assert space.stats.query_cache_hits == 0

    def test_summary_surfaces_split(self, covid_catalog, covid_log):
        from repro.pipeline import PipelineConfig, generate_interface

        result = generate_interface(
            covid_log[:3], covid_catalog, PipelineConfig(method="greedy")
        )
        summary = result.summary()
        for key in (
            "queries_executed",
            "query_cache_hits",
            "profile_cache_hits",
            "tree_evals_reused",
            "tree_evals_computed",
        ):
            assert key in summary


class TestCacheBounds:
    def test_transformation_cache_is_bounded(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log[:4])
        mcts_search(space, iterations=30, seed=2)
        assert len(space._transformation_cache) <= TRANSFORMATION_CACHE_CAPACITY

    def test_transformation_cache_keyed_by_signature(self, covid_catalog, covid_log):
        """Equal-signature trees share one entry; the cache holds no id() keys."""
        space = make_space(covid_catalog, covid_log[:4])
        forest = space.initial_state
        first = space._transformations_for(forest.trees[0])
        second = space._transformations_for(forest.trees[0])
        assert first is second

    def test_cache_info_reports_all_caches(self, covid_catalog, covid_log):
        space = make_space(covid_catalog, covid_log[:3], catalog=covid_catalog)
        greedy_search(space)
        info = space.cache_info()
        for section in ("profiles", "visualizations", "pieces", "rows", "transformations"):
            assert section in info
