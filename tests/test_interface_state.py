"""Tests for the live interface runtime: widget/interaction events → new queries → new data."""

from __future__ import annotations

import pytest

from repro.errors import InterfaceError
from repro.interface import InteractionType, WidgetType
from repro.mapping import MappingConfig, map_forest_to_interface
from repro.difftree import build_forest
from repro.difftree.transformations import applicable_transformations
from repro.interface.state import InterfaceState
from repro.pipeline import PipelineConfig, generate_interface


@pytest.fixture()
def sdss_state(sdss_catalog, sdss_log):
    result = generate_interface(
        sdss_log, sdss_catalog, PipelineConfig(method="mcts", mcts_iterations=40, seed=2)
    )
    return result.start_session(sdss_catalog)


@pytest.fixture()
def covid_state(covid_catalog, covid_log):
    result = generate_interface(
        covid_log[:3],
        covid_catalog,
        PipelineConfig(method="mcts", mcts_iterations=60, seed=2, name="covid"),
    )
    return result.start_session(covid_catalog)


class TestSdssPanZoom:
    def test_initial_data_loads(self, sdss_state):
        data = sdss_state.refresh_all()
        assert data
        for result in data.values():
            assert result.row_count > 0

    def test_pan_zoom_changes_query_and_data(self, sdss_state):
        interactions = [
            i
            for i in sdss_state.interface.interactions
            if i.interaction_type is InteractionType.PAN_ZOOM
        ]
        assert interactions, "SDSS interface should expose a pan/zoom interaction"
        interaction = interactions[0]
        tree_index = interaction.bindings[0].tree_index

        before_sql = sdss_state.current_sql(tree_index)
        before_rows = sdss_state.data_for_tree(tree_index).row_count

        event = sdss_state.apply_pan_zoom(
            interaction.interaction_id, (150.0, 152.0), (0.0, 3.0)
        )
        after_sql = sdss_state.current_sql(tree_index)
        after_rows = sdss_state.data_for_tree(tree_index).row_count

        assert before_sql != after_sql
        assert "150.0" in after_sql and "152.0" in after_sql
        assert after_rows < before_rows
        assert event.affected_trees == (tree_index,)

    def test_history_records_events(self, sdss_state):
        interaction = sdss_state.interface.interactions[0]
        sdss_state.apply_pan_zoom(interaction.interaction_id, (120.0, 130.0), (0.0, 10.0))
        assert len(sdss_state.history) == 1
        assert sdss_state.history[0].sql_after


class TestCovidBrush:
    def test_brush_reconfigures_detail_chart(self, covid_state):
        brushes = [
            i
            for i in covid_state.interface.interactions
            if i.interaction_type is InteractionType.BRUSH_X
        ]
        assert brushes, "COVID V1 interface should expose a brush interaction"
        brush = brushes[0]
        tree_index = brush.bindings[0].tree_index

        event = covid_state.apply_brush(brush.interaction_id, "2021-11-01", "2021-11-10")
        sql = event.sql_after[tree_index]
        assert "2021-11-01" in sql and "2021-11-10" in sql

        data = covid_state.data_for_tree(tree_index)
        dates = data.column_values("date")
        assert dates and min(dates) >= "2021-11-01" and max(dates) <= "2021-11-10"

    def test_wrong_event_type_rejected(self, covid_state):
        brush = covid_state.interface.interactions[0]
        with pytest.raises(InterfaceError):
            covid_state.apply_click(brush.interaction_id, "2021-11-01")


class TestWidgets:
    def test_toggle_widget_changes_structure(self, covid_catalog, covid_v3_log):
        result = generate_interface(
            covid_v3_log,
            covid_catalog,
            PipelineConfig(method="greedy", name="covid V3"),
        )
        state = result.start_session(covid_catalog)
        toggles = [w for w in result.interface.widgets if w.widget_type is WidgetType.TOGGLE]
        if not toggles:
            pytest.skip("no toggle produced for this search seed")
        toggle = toggles[0]
        tree_index = toggle.bindings[0].tree_index
        state.set_widget(toggle.widget_id, True)
        enabled_sql = state.current_sql(tree_index)
        state.set_widget(toggle.widget_id, False)
        disabled_sql = state.current_sql(tree_index)
        # Toggling the OPT choice adds/removes a whole clause of the query.
        assert enabled_sql != disabled_sql
        assert len(disabled_sql) < len(enabled_sql)

    def test_button_group_switches_region(self, covid_catalog, covid_v3_log):
        result = generate_interface(
            covid_v3_log,
            covid_catalog,
            PipelineConfig(method="mcts", mcts_iterations=120, seed=1, name="covid V3"),
        )
        state = result.start_session(covid_catalog)
        groups = [
            w
            for w in result.interface.widgets
            if w.is_discrete() and set(w.options) == {"South", "Northeast"}
        ]
        assert groups, "V3 interface should expose a South/Northeast button pair"
        group = groups[0]
        tree_index = group.bindings[0].tree_index
        state.set_widget(group.widget_id, 1)
        sql = state.current_sql(tree_index)
        assert "Northeast" in sql and "'South'" not in sql

    def test_invalid_option_index_rejected(self, covid_catalog, covid_v3_log):
        result = generate_interface(
            covid_v3_log, covid_catalog, PipelineConfig(method="greedy", name="covid V3")
        )
        state = result.start_session(covid_catalog)
        discrete = [w for w in result.interface.widgets if w.is_discrete()]
        if not discrete:
            pytest.skip("no discrete widget produced")
        with pytest.raises(InterfaceError):
            state.set_widget(discrete[0].widget_id, 99)

    def test_range_widget_binding(self, toy_catalog):
        # Build an interface whose range pair maps to a widget (single tree,
        # no other chart displaying the attribute).
        forest = build_forest(
            [
                "SELECT p, count(*) FROM t WHERE a BETWEEN 1 AND 2 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE a BETWEEN 2 AND 3 GROUP BY p",
            ],
            strategy="merged",
        )
        tree = forest.trees[0]
        for transformation in applicable_transformations(tree):
            if transformation.rule == "factor_common_root":
                tree = transformation(tree)
        forest = forest.replace_tree(0, tree)
        interface = map_forest_to_interface(forest, toy_catalog.schemas(), MappingConfig())
        range_widgets = [w for w in interface.widgets if w.is_continuous()]
        assert range_widgets
        state = InterfaceState(interface, toy_catalog)
        state.set_widget(range_widgets[0].widget_id, (1, 3))
        sql = state.current_sql(0)
        assert "BETWEEN 1 AND 3" in sql
