"""Tests for the synthetic demo datasets and their query logs."""

from __future__ import annotations


from repro.datasets import (
    CovidConfig,
    SdssConfig,
    Sp500Config,
    covid_query_log,
    covid_region_variant_queries,
    demo_scenarios,
    generate_covid_cases,
    generate_photo_obj,
    generate_prices,
    generate_sectors,
    generate_state_regions,
    sdss_extended_query_log,
    sdss_query_log,
    sp500_query_log,
)
from repro.sql.parser import parse_select


class TestCovidDataset:
    def test_schema_and_size(self):
        table = generate_covid_cases()
        assert table.column_names == ["state", "date", "cases"]
        states = set(table.column("state"))
        assert {"NY", "FL", "CA"} <= states
        assert table.row_count == len(states) * 119

    def test_determinism(self):
        first = generate_covid_cases(CovidConfig(seed=7))
        second = generate_covid_cases(CovidConfig(seed=7))
        assert list(first.rows()) == list(second.rows())

    def test_seed_changes_data(self):
        first = generate_covid_cases(CovidConfig(seed=1))
        second = generate_covid_cases(CovidConfig(seed=2))
        assert list(first.rows()) != list(second.rows())

    def test_december_surge_present(self):
        """The walkthrough relies on a visible December case increase."""
        table = generate_covid_cases()
        rows = table.to_dicts()
        september = [r["cases"] for r in rows if r["date"].startswith("2021-09")]
        december = [r["cases"] for r in rows if r["date"].startswith("2021-12-2")]
        assert sum(december) / len(december) > 1.3 * sum(september) / len(september)

    def test_florida_grows_fastest_in_south(self):
        table = generate_covid_cases()
        regions = dict(generate_state_regions().rows())
        rows = table.to_dicts()

        def growth(state: str) -> float:
            series = [r["cases"] for r in rows if r["state"] == state]
            return sum(series[-7:]) / max(sum(series[:7]), 1)

        south_states = [state for state, region in regions.items() if region == "South"]
        best = max(south_states, key=growth)
        assert best == "FL"

    def test_regions_cover_all_states(self):
        cases_states = set(generate_covid_cases().column("state"))
        region_states = set(generate_state_regions().column("state"))
        assert cases_states == region_states

    def test_query_log_parses_and_has_expected_shape(self):
        log = covid_query_log()
        assert len(log) == 5
        for sql in log:
            parse_select(sql)
        variants = covid_region_variant_queries()
        assert "Northeast" in variants[1]

    def test_query_log_executes(self, covid_catalog):
        for sql in covid_query_log():
            assert covid_catalog.execute(sql).row_count > 0


class TestSdssDataset:
    def test_schema_and_bounds(self):
        table = generate_photo_obj(SdssConfig(object_count=500, seed=3))
        assert table.row_count == 500
        config = SdssConfig()
        for ra in table.column("ra"):
            assert config.ra_min <= ra <= config.ra_max
        for dec in table.column("dec"):
            assert config.dec_min <= dec <= config.dec_max
        assert set(table.column("class")) <= {"GALAXY", "STAR", "QSO"}

    def test_determinism(self):
        first = generate_photo_obj(SdssConfig(object_count=200))
        second = generate_photo_obj(SdssConfig(object_count=200))
        assert list(first.rows()) == list(second.rows())

    def test_cluster_over_density(self):
        """The region around (150, 2) must be denser than an average patch."""
        table = generate_photo_obj()
        rows = table.to_dicts()
        in_cluster = [r for r in rows if 145 <= r["ra"] <= 155 and -1 <= r["dec"] <= 5]
        in_empty = [r for r in rows if 230 <= r["ra"] <= 240 and 45 <= r["dec"] <= 51]
        assert len(in_cluster) > 2 * max(len(in_empty), 1)

    def test_query_logs_parse_and_execute(self, sdss_catalog):
        for sql in sdss_query_log() + sdss_extended_query_log():
            parse_select(sql)
        for sql in sdss_query_log():
            assert sdss_catalog.execute(sql).row_count > 0


class TestSp500Dataset:
    def test_schema_and_trading_days(self):
        table = generate_prices(Sp500Config(trading_days=30))
        assert table.column_names == ["ticker", "date", "open", "high", "low", "close", "volume"]
        dates = sorted(set(table.column("date")))
        assert len(dates) == 30
        import datetime

        for date in dates:
            assert datetime.date.fromisoformat(date).weekday() < 5

    def test_high_low_invariants(self):
        table = generate_prices(Sp500Config(trading_days=40))
        for row in table.to_dicts():
            assert row["low"] <= row["open"] <= row["high"]
            assert row["low"] <= row["close"] <= row["high"]
            assert row["volume"] >= 0

    def test_sectors_join(self):
        tickers = set(generate_prices(Sp500Config(trading_days=5)).column("ticker"))
        sector_tickers = set(generate_sectors().column("ticker"))
        assert tickers == sector_tickers

    def test_determinism(self):
        first = generate_prices(Sp500Config(trading_days=10))
        second = generate_prices(Sp500Config(trading_days=10))
        assert list(first.rows()) == list(second.rows())

    def test_query_log_parses(self):
        for sql in sp500_query_log():
            parse_select(sql)


class TestScenarios:
    def test_demo_scenarios_structure(self):
        scenarios = demo_scenarios()
        assert set(scenarios) == {"covid", "sdss", "sp500"}
        for _name, (catalog, log) in scenarios.items():
            assert catalog.table_names()
            assert log
