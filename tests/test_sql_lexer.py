"""Unit tests for the SQL lexer."""

from __future__ import annotations

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def types(sql: str) -> list[TokenType]:
    return [token.type for token in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [token.value for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select a from t")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[0].value == "SELECT"
        assert tokens[2].value == "FROM"

    def test_identifiers_keep_case(self):
        tokens = tokenize("SELECT MyColumn FROM MyTable")
        assert tokens[1].value == "MyColumn"
        assert tokens[3].value == "MyTable"

    def test_integer_and_float_literals(self):
        tokens = tokenize("SELECT 42, 3.14, 1e3, 2.5E-2")
        literal_types = [t.type for t in tokens if t.type in (TokenType.INTEGER, TokenType.FLOAT)]
        assert literal_types == [
            TokenType.INTEGER,
            TokenType.FLOAT,
            TokenType.FLOAT,
            TokenType.FLOAT,
        ]

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT "weird name" FROM t')
        quoted = [t for t in tokens if t.type is TokenType.QUOTED_IDENTIFIER]
        assert quoted[0].value == "weird name"

    def test_punctuation(self):
        assert types("(a, b);")[:6] == [
            TokenType.LPAREN,
            TokenType.IDENTIFIER,
            TokenType.COMMA,
            TokenType.IDENTIFIER,
            TokenType.RPAREN,
            TokenType.SEMICOLON,
        ]

    def test_eof_is_last(self):
        assert types("SELECT 1")[-1] is TokenType.EOF
        assert types("")[-1] is TokenType.EOF


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/", "%"])
    def test_operator_recognised(self, op):
        tokens = tokenize(f"a {op} b")
        assert any(t.type is TokenType.OPERATOR and t.value == op for t in tokens)

    def test_multi_char_operator_not_split(self):
        tokens = [t for t in tokenize("a >= 1") if t.type is TokenType.OPERATOR]
        assert len(tokens) == 1
        assert tokens[0].value == ">="


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("SELECT a -- trailing comment\nFROM t") == ["SELECT", "a", "FROM", "t"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* hi */ a FROM t") == ["SELECT", "a", "FROM", "t"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT /* oops")

    def test_newlines_update_line_numbers(self):
        tokens = tokenize("SELECT a\nFROM t")
        from_token = [t for t in tokens if t.value == "FROM"][0]
        assert from_token.line == 2


class TestParameters:
    def test_named_parameter(self):
        tokens = tokenize("WHERE a = :threshold")
        params = [t for t in tokens if t.type is TokenType.PARAMETER]
        assert params[0].value == "threshold"

    def test_positional_parameter(self):
        tokens = tokenize("WHERE a = ?")
        params = [t for t in tokens if t.type is TokenType.PARAMETER]
        assert params[0].value == "?"


class TestErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlLexError) as excinfo:
            tokenize("SELECT a # b")
        assert "Unexpected" in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(SqlLexError) as excinfo:
            tokenize("SELECT a\n  # b")
        assert excinfo.value.line == 2
