"""Integration tests for the SQL executor against small in-memory tables."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.engine.catalog import Catalog
from repro.sql.schema import AttributeRole


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "sales",
        ["region", "product", "amount", "quantity"],
        [
            ["east", "apple", 100, 10],
            ["east", "banana", 50, 20],
            ["west", "apple", 150, 15],
            ["west", "banana", None, 5],
            ["north", "cherry", 75, 7],
        ],
    )
    cat.create_table(
        "regions",
        ["region", "manager"],
        [["east", "alice"], ["west", "bob"]],
    )
    return cat


class TestProjectionAndFilter:
    def test_select_star(self, catalog):
        result = catalog.execute("SELECT * FROM sales")
        assert result.columns == ["region", "product", "amount", "quantity"]
        assert result.row_count == 5

    def test_projection_with_expression(self, catalog):
        result = catalog.execute("SELECT product, amount * 2 AS double_amount FROM sales WHERE region = 'east'")
        assert result.columns == ["product", "double_amount"]
        assert result.rows == [("apple", 200), ("banana", 100)]

    def test_where_with_and_or(self, catalog):
        result = catalog.execute(
            "SELECT product FROM sales WHERE region = 'east' OR (region = 'west' AND amount > 100)"
        )
        assert {row[0] for row in result.rows} == {"apple", "banana"}

    def test_null_comparison_filters_row_out(self, catalog):
        result = catalog.execute("SELECT product FROM sales WHERE amount > 10")
        # The west/banana row has NULL amount and must not pass the filter.
        assert ("banana",) in result.rows
        assert result.row_count == 4

    def test_is_null(self, catalog):
        result = catalog.execute("SELECT product FROM sales WHERE amount IS NULL")
        assert result.rows == [("banana",)]

    def test_between_and_in(self, catalog):
        result = catalog.execute(
            "SELECT product FROM sales WHERE amount BETWEEN 60 AND 160 AND region IN ('west', 'north')"
        )
        assert {row[0] for row in result.rows} == {"apple", "cherry"}

    def test_like(self, catalog):
        result = catalog.execute("SELECT product FROM sales WHERE product LIKE 'a%'")
        assert {row[0] for row in result.rows} == {"apple"}

    def test_case_expression(self, catalog):
        result = catalog.execute(
            "SELECT product, CASE WHEN amount >= 100 THEN 'big' ELSE 'small' END AS size "
            "FROM sales WHERE amount IS NOT NULL"
        )
        sizes = dict(result.rows)
        assert sizes["apple"] == "big"
        assert sizes["cherry"] == "small"

    def test_select_without_from(self, catalog):
        result = catalog.execute("SELECT 1 + 2 AS three, 'x' AS label")
        assert result.rows == [(3, "x")]


class TestAggregation:
    def test_group_by_sum(self, catalog):
        result = catalog.execute(
            "SELECT region, sum(amount) AS total FROM sales GROUP BY region ORDER BY region"
        )
        assert result.rows == [("east", 150), ("north", 75), ("west", 150)]

    def test_global_aggregate_without_group_by(self, catalog):
        result = catalog.execute("SELECT count(*), avg(amount) FROM sales")
        assert result.rows[0][0] == 5
        assert result.rows[0][1] == pytest.approx(93.75)

    def test_global_aggregate_on_empty_input(self, catalog):
        result = catalog.execute("SELECT count(*) AS n, sum(amount) AS s FROM sales WHERE region = 'nowhere'")
        assert result.rows == [(0, None)]

    def test_having(self, catalog):
        result = catalog.execute(
            "SELECT region, count(*) AS n FROM sales GROUP BY region HAVING count(*) >= 2 ORDER BY region"
        )
        assert result.rows == [("east", 2), ("west", 2)]

    def test_count_distinct(self, catalog):
        result = catalog.execute("SELECT count(DISTINCT product) FROM sales")
        assert result.rows == [(3,)]

    def test_aggregate_of_expression(self, catalog):
        result = catalog.execute("SELECT sum(amount * quantity) AS weighted FROM sales WHERE amount IS NOT NULL")
        assert result.rows == [(100 * 10 + 50 * 20 + 150 * 15 + 75 * 7,)]

    def test_group_by_expression(self, catalog):
        result = catalog.execute(
            "SELECT upper(region) AS r, count(*) FROM sales GROUP BY upper(region) ORDER BY r"
        )
        assert result.rows[0] == ("EAST", 2)

    def test_select_star_with_group_by_raises(self, catalog):
        with pytest.raises(ExecutionError):
            catalog.execute("SELECT * FROM sales GROUP BY region")

    def test_result_schema_roles(self, catalog):
        result = catalog.execute("SELECT region, sum(amount) AS total FROM sales GROUP BY region")
        assert result.schema.column("total").resolved_role() is AttributeRole.QUANTITATIVE
        assert result.schema.column("region").resolved_role() is AttributeRole.NOMINAL


class TestJoins:
    def test_inner_join(self, catalog):
        result = catalog.execute(
            "SELECT s.product, r.manager FROM sales s JOIN regions r ON s.region = r.region"
        )
        assert result.row_count == 4
        assert ("apple", "alice") in result.rows

    def test_left_join_pads_nulls(self, catalog):
        result = catalog.execute(
            "SELECT s.region, r.manager FROM sales s LEFT JOIN regions r ON s.region = r.region"
        )
        managers = {row for row in result.rows}
        assert ("north", None) in managers

    def test_right_join(self, catalog):
        result = catalog.execute(
            "SELECT r.manager, s.product FROM sales s RIGHT JOIN regions r ON s.region = r.region AND s.amount > 120"
        )
        assert ("alice", None) in result.rows
        assert ("bob", "apple") in result.rows

    def test_full_join(self, catalog):
        result = catalog.execute(
            "SELECT s.region, r.region FROM sales s FULL JOIN regions r ON s.region = r.region AND s.amount > 1000"
        )
        left_only = [row for row in result.rows if row[1] is None]
        right_only = [row for row in result.rows if row[0] is None]
        assert left_only and right_only

    def test_cross_join(self, catalog):
        result = catalog.execute("SELECT s.product FROM sales s CROSS JOIN regions r")
        assert result.row_count == 10

    def test_join_using(self, catalog):
        result = catalog.execute("SELECT manager FROM sales JOIN regions USING (region)")
        assert result.row_count == 4

    def test_derived_table(self, catalog):
        result = catalog.execute(
            "SELECT big.product FROM (SELECT product, amount FROM sales WHERE amount > 90) AS big"
        )
        assert {row[0] for row in result.rows} == {"apple"}


class TestSubqueries:
    def test_uncorrelated_scalar_subquery(self, catalog):
        result = catalog.execute(
            "SELECT product FROM sales WHERE amount > (SELECT avg(amount) FROM sales)"
        )
        assert {row[0] for row in result.rows} == {"apple"}

    def test_correlated_subquery(self, catalog):
        result = catalog.execute(
            "SELECT s.product, s.region FROM sales s "
            "WHERE s.amount >= (SELECT max(s2.amount) FROM sales s2 WHERE s2.region = s.region)"
        )
        products = {row[0] for row in result.rows}
        assert products == {"apple", "cherry"}

    def test_in_subquery(self, catalog):
        result = catalog.execute(
            "SELECT product FROM sales WHERE region IN (SELECT region FROM regions)"
        )
        assert result.row_count == 4

    def test_not_in_subquery(self, catalog):
        result = catalog.execute(
            "SELECT DISTINCT region FROM sales WHERE region NOT IN (SELECT region FROM regions)"
        )
        assert result.rows == [("north",)]

    def test_exists_correlated(self, catalog):
        result = catalog.execute(
            "SELECT r.manager FROM regions r WHERE EXISTS "
            "(SELECT 1 FROM sales s WHERE s.region = r.region AND s.amount > 120)"
        )
        assert result.rows == [("bob",)]

    def test_cte(self, catalog):
        result = catalog.execute(
            "WITH totals AS (SELECT region, sum(amount) AS total FROM sales GROUP BY region) "
            "SELECT region FROM totals WHERE total >= 150 ORDER BY region"
        )
        assert result.rows == [("east",), ("west",)]


class TestOrderingLimitsSetOps:
    def test_order_by_desc_with_nulls_last(self, catalog):
        result = catalog.execute("SELECT product, amount FROM sales ORDER BY amount DESC")
        assert result.rows[0][0] == "apple" and result.rows[0][1] == 150
        assert result.rows[-1][1] is None

    def test_order_by_positional(self, catalog):
        result = catalog.execute("SELECT product, amount FROM sales WHERE amount IS NOT NULL ORDER BY 2")
        assert result.rows[0][1] == 50

    def test_order_by_alias(self, catalog):
        result = catalog.execute(
            "SELECT region, sum(amount) AS total FROM sales GROUP BY region ORDER BY total DESC"
        )
        assert result.rows[0][1] == 150

    def test_limit_offset(self, catalog):
        result = catalog.execute("SELECT product FROM sales ORDER BY product LIMIT 2 OFFSET 1")
        assert result.rows == [("apple",), ("banana",)]

    def test_distinct(self, catalog):
        result = catalog.execute("SELECT DISTINCT region FROM sales")
        assert result.row_count == 3

    def test_union_and_union_all(self, catalog):
        union = catalog.execute("SELECT region FROM sales UNION SELECT region FROM regions")
        union_all = catalog.execute("SELECT region FROM sales UNION ALL SELECT region FROM regions")
        assert union.row_count == 3
        assert union_all.row_count == 7

    def test_intersect_and_except(self, catalog):
        intersect = catalog.execute("SELECT region FROM sales INTERSECT SELECT region FROM regions")
        except_ = catalog.execute("SELECT DISTINCT region FROM sales EXCEPT SELECT region FROM regions")
        assert {row[0] for row in intersect.rows} == {"east", "west"}
        assert except_.rows == [("north",)]

    def test_set_operation_column_mismatch(self, catalog):
        with pytest.raises(ExecutionError):
            catalog.execute("SELECT region, product FROM sales UNION SELECT region FROM regions")


class TestCatalogManagement:
    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.execute("SELECT * FROM missing")

    def test_register_duplicate_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table("sales", ["a"], [])

    def test_register_replace(self, catalog):
        catalog.create_table("sales", ["a"], [[1]], replace=True)
        assert catalog.execute("SELECT * FROM sales").columns == ["a"]

    def test_drop(self, catalog):
        catalog.drop("regions")
        assert not catalog.has_table("regions")
        with pytest.raises(CatalogError):
            catalog.drop("regions")

    def test_only_selects_executable(self, catalog):
        with pytest.raises(Exception):
            catalog.execute("DELETE FROM sales")

    def test_explain_mentions_operators(self, catalog):
        plan = catalog.explain(
            "SELECT region, count(*) FROM sales WHERE amount > 10 GROUP BY region ORDER BY 2 LIMIT 1"
        )
        for operator in ("Scan", "Filter", "Aggregate", "Project", "Sort", "Limit"):
            assert operator in plan


class TestVectorizedShortCircuit:
    def test_and_short_circuits_rows_that_would_type_error(self, catalog):
        catalog.create_table("mixed", ["kind", "val"], [["num", 5], ["num", 12], ["str", "hello"]])
        result = catalog.execute("SELECT val FROM mixed WHERE kind = 'num' AND val > 5")
        assert result.rows == [(12,)]

    def test_or_short_circuits_rows_that_would_type_error(self, catalog):
        catalog.create_table("mixed", ["kind", "val"], [["num", 5], ["str", "hello"]])
        result = catalog.execute("SELECT kind FROM mixed WHERE kind = 'str' OR val > 1")
        assert result.rows == [("num",), ("str",)]

    def test_case_arms_evaluate_lazily_per_row(self, catalog):
        catalog.create_table("mixed", ["kind", "val"], [["num", 5], ["str", "hello"]])
        result = catalog.execute(
            "SELECT CASE WHEN kind = 'num' THEN val * 2 ELSE val END AS v FROM mixed"
        )
        assert result.rows == [(10,), ("hello",)]

    def test_type_error_on_reached_rows_still_raises(self, catalog):
        catalog.create_table("mixed", ["kind", "val"], [["num", 5], ["str", "hello"]])
        with pytest.raises(Exception):
            catalog.execute("SELECT val FROM mixed WHERE val > 5")


class TestOrderByAggregates:
    def test_order_by_aggregate_without_grouping_raises(self, catalog):
        # ORDER BY alone must not turn a plain projection into a one-row
        # global aggregate.
        with pytest.raises(ExecutionError):
            catalog.execute("SELECT product FROM sales ORDER BY max(amount)")

    def test_grouped_query_can_order_by_unprojected_aggregate(self, catalog):
        result = catalog.execute(
            "SELECT region FROM sales GROUP BY region ORDER BY sum(amount) DESC, region"
        )
        assert result.rows == [("east",), ("west",), ("north",)]
