"""Tests for the incremental-maintenance plane (``engine/ivm.py``).

The correctness bar everywhere: a folded result must equal (rows, columns,
schema column names) an ``ExecOptions(use_cache=False)`` cold recompute at
the same version — not just bag-equal; folds feed rows in table order, so
even row order matches.
"""

from __future__ import annotations

import pytest

from repro.engine.catalog import Catalog
from repro.engine.ivm import AppendDelta, VersionLog, analyze
from repro.engine.options import ExecOptions
from repro.engine.query_cache import canonical_text
from repro.sql.parser import parse

COLD = ExecOptions(use_cache=False)


def make_catalog(**kwargs) -> Catalog:
    cat = Catalog(**kwargs)
    cat.create_table(
        "events",
        ["kind", "region", "value"],
        [
            ["view", "east", 10],
            ["click", "west", 5],
            ["view", "east", 7],
            ["view", "west", 2],
        ],
    )
    return cat


def assert_fold_matches_cold(catalog: Catalog, sql: str) -> None:
    warm = catalog.execute(sql)
    cold = catalog.execute(sql, COLD)
    assert warm.columns == cold.columns
    assert warm.rows == cold.rows
    assert [c.name for c in warm.schema.columns] == [c.name for c in cold.schema.columns]


MAINTAINABLE_QUERIES = [
    "SELECT kind, count(*) AS n FROM events GROUP BY kind",
    "SELECT kind, sum(value) AS total FROM events GROUP BY kind",
    "SELECT kind, avg(value) AS a FROM events GROUP BY kind",
    "SELECT kind, min(value) AS lo, max(value) AS hi FROM events GROUP BY kind",
    "SELECT kind, median(value) AS m FROM events GROUP BY kind",
    "SELECT kind, stddev(value) AS s, variance(value) AS v FROM events GROUP BY kind",
    "SELECT kind, count(DISTINCT region) AS regions FROM events GROUP BY kind",
    "SELECT kind, region, sum(value) AS total FROM events GROUP BY kind, region",
    "SELECT count(*) AS n FROM events",
    "SELECT sum(value) AS total, avg(value) AS a FROM events",
    "SELECT count(*) AS n FROM events WHERE value > 4",
    "SELECT kind, value FROM events",
    "SELECT kind, value FROM events WHERE value > 4",
    "SELECT * FROM events WHERE region = 'east'",
]


class TestFoldCorrectness:
    @pytest.mark.parametrize("sql", MAINTAINABLE_QUERIES)
    def test_fold_equals_cold_recompute(self, sql):
        catalog = make_catalog()
        assert_fold_matches_cold(catalog, sql)  # cold store + folder
        catalog.append_rows("events", [["click", "east", 3], ["view", "north", 9]])
        assert_fold_matches_cold(catalog, sql)  # first fold
        catalog.append_rows("events", [["view", "north", 1]])
        catalog.append_rows("events", [["click", "west", 11], ["view", "east", 0]])
        assert_fold_matches_cold(catalog, sql)  # multi-record chain walk
        stats = catalog.cache_stats()
        assert stats["ivm_folds"] >= 2
        assert stats["ivm_fallbacks"] == 0

    def test_new_group_appearing_only_in_the_delta(self):
        catalog = make_catalog()
        sql = "SELECT region, count(*) AS n FROM events GROUP BY region"
        catalog.execute(sql)
        catalog.append_rows("events", [["view", "south", 1], ["view", "south", 2]])
        warm = catalog.execute(sql)
        assert ("south", 2) in warm.rows
        assert_fold_matches_cold(catalog, sql)

    def test_global_aggregate_with_filter_matching_zero_rows(self):
        catalog = make_catalog()
        sql = "SELECT count(*) AS n, sum(value) AS total FROM events WHERE value > 1000"
        assert catalog.execute(sql).rows == [(0, None)]
        catalog.append_rows("events", [["view", "east", 1]])
        assert_fold_matches_cold(catalog, sql)
        catalog.append_rows("events", [["view", "east", 5000]])
        warm = catalog.execute(sql)
        assert warm.rows == [(1, 5000)]
        assert_fold_matches_cold(catalog, sql)

    def test_splice_preserves_row_order_and_isolation(self):
        catalog = make_catalog()
        sql = "SELECT kind, value FROM events WHERE value > 3"
        first = catalog.execute(sql)
        catalog.append_rows("events", [["tap", "east", 99]])
        folded = catalog.execute(sql)
        assert folded.rows[: len(first.rows)] == first.rows
        assert folded.rows[-1] == ("tap", 99)
        # Mutating the served copy must not poison the folder's state.
        folded.rows.clear()
        again = catalog.execute(sql)
        assert again.rows[-1] == ("tap", 99)

    def test_empty_append_does_not_break_the_chain(self):
        catalog = make_catalog()
        sql = "SELECT kind, count(*) AS n FROM events GROUP BY kind"
        catalog.execute(sql)
        assert catalog.append_rows("events", []) == 0
        catalog.append_rows("events", [["view", "east", 4]])
        assert_fold_matches_cold(catalog, sql)
        assert catalog.cache_stats()["ivm_fallbacks"] == 0

    def test_fold_result_served_as_plain_hit_on_repeat(self):
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        catalog.execute(sql)
        catalog.append_rows("events", [["view", "east", 4]])
        catalog.execute(sql)
        before = catalog.cache_stats()
        catalog.execute(sql)
        after = catalog.cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["ivm_folds"] == before["ivm_folds"]


class TestFallbacks:
    def test_version_log_truncation_falls_back_to_recompute(self):
        catalog = make_catalog()
        catalog._version_log = VersionLog(capacity=2)
        sql = "SELECT kind, sum(value) AS total FROM events GROUP BY kind"
        catalog.execute(sql)
        for i in range(4):  # more appends than the log holds
            catalog.append_rows("events", [["view", "east", i]])
        assert_fold_matches_cold(catalog, sql)
        stats = catalog.cache_stats()
        assert stats["ivm_fallbacks"] == 1
        # The recompute registered a fresh folder at the current version.
        catalog.append_rows("events", [["view", "west", 8]])
        assert_fold_matches_cold(catalog, sql)
        assert catalog.cache_stats()["ivm_folds"] >= 1

    def test_table_replacement_invalidates_fold_state(self):
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        catalog.execute(sql)
        catalog.create_table("events", ["kind", "region", "value"], [["x", "y", 1]], replace=True)
        assert catalog.execute(sql).rows == [(1,)]
        assert_fold_matches_cold(catalog, sql)

    def test_drop_and_recreate_invalidates_fold_state(self):
        catalog = make_catalog()
        sql = "SELECT sum(value) AS total FROM events"
        catalog.execute(sql)
        catalog.drop("events")
        catalog.create_table("events", ["kind", "region", "value"], [["x", "y", 41]])
        assert catalog.execute(sql).rows == [(41,)]
        assert_fold_matches_cold(catalog, sql)

    def test_in_place_append_breaks_the_chain(self):
        # Table.append mutates without a log record: the fingerprint moves
        # but no chain exists, so the probe falls back (and stays correct).
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        catalog.execute(sql)
        catalog.table("events").append(["view", "east", 4])
        assert catalog.execute(sql).rows == [(5,)]
        assert catalog.cache_stats()["ivm_fallbacks"] == 1

    def test_schema_drift_on_replacement_with_different_columns(self):
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        catalog.execute(sql)
        catalog.create_table("events", ["kind"], [["a"], ["b"]], replace=True)
        assert catalog.execute(sql).rows == [(2,)]


class TestFolderLifecycle:
    def test_entry_eviction_does_not_destroy_fold_state(self):
        # The folder map is LRU'd separately: evicting the *result entry*
        # (here by flooding a capacity-2 cache) must leave the folder able
        # to answer the next probe.
        catalog = make_catalog(query_cache_capacity=2)
        sql = "SELECT kind, count(*) AS n FROM events GROUP BY kind"
        catalog.execute(sql)
        catalog.execute("SELECT value FROM events WHERE value > 100 ORDER BY value")
        catalog.execute("SELECT region FROM events ORDER BY region")
        assert_fold_matches_cold(catalog, sql)  # entry evicted; folder alive
        catalog.append_rows("events", [["view", "east", 4]])
        assert_fold_matches_cold(catalog, sql)
        assert catalog.cache_stats()["ivm_folds"] >= 1

    def test_folder_survives_being_probed_from_an_old_version(self):
        # A session pinned before the append keeps reading its own version's
        # entry; the folder advanced past it must not serve it new rows.
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        old = catalog.snapshot()
        assert old.execute(sql).rows == [(4,)]
        catalog.append_rows("events", [["view", "east", 4]])
        new = catalog.snapshot()
        assert new.execute(sql).rows == [(5,)]
        assert old.execute(sql).rows == [(4,)]

    def test_frozen_snapshot_never_observes_a_torn_append(self):
        # append_rows is copy-on-write: the pinned (frozen) table object is
        # untouched, so a fold primed from the old snapshot and a reader of
        # the old snapshot both see exactly the base rows.
        catalog = make_catalog()
        sql = "SELECT kind, sum(value) AS total FROM events GROUP BY kind"
        pinned = catalog.snapshot()
        before = pinned.execute(sql)
        catalog.append_rows("events", [["view", "east", 1000]])
        assert pinned.execute(sql).rows == before.rows
        with pytest.raises(Exception):
            pinned.table("events").append(["view", "east", 1])
        assert_fold_matches_cold(catalog, sql)

    def test_multi_append_fold_prepopulates_intermediate_versions(self):
        # A fold that walks several appends at once emits the result at each
        # version it passes through, so a session still pinned at one of them
        # gets a plain hit instead of an unfoldable backward probe.
        catalog = make_catalog()
        sql = "SELECT kind, count(*) AS n FROM events GROUP BY kind"
        catalog.execute(sql)
        catalog.append_rows("events", [["view", "east", 1]])
        pinned_mid = catalog.snapshot()
        catalog.append_rows("events", [["click", "west", 2]])
        assert_fold_matches_cold(catalog, sql)  # chain walk over both appends
        before = catalog.cache_stats()
        mid = pinned_mid.execute(sql)
        after = catalog.cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["ivm_folds"] == before["ivm_folds"]
        assert after["ivm_fallbacks"] == 0
        assert mid.rows == pinned_mid.execute(sql, COLD).rows

    def test_backward_probe_keeps_the_advanced_folder(self):
        # An unfoldable probe from behind the write frontier must not drop a
        # folder that is still on the chain — live sessions keep folding.
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        old = catalog.snapshot()  # pinned at the base; never executes there
        catalog.append_rows("events", [["view", "east", 1]])
        catalog.execute(sql)  # cold store + folder
        catalog.append_rows("events", [["view", "east", 1]])
        assert catalog.execute(sql).rows == [(6,)]  # folder advances by fold
        assert old.execute(sql).rows == [(4,)]  # backward probe: recomputes
        stats = catalog.cache_stats()
        assert stats["ivm_fallbacks"] == 1
        # The advanced folder survived the backward probe and still folds.
        catalog.append_rows("events", [["view", "east", 1]])
        assert catalog.execute(sql).rows == [(7,)]
        assert catalog.cache_stats()["ivm_folds"] == stats["ivm_folds"] + 1

    def test_cached_result_probe_folds_too(self):
        # The process tier's frontend probe (cached_result) uses the same
        # fold path as execute.
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        catalog.execute(sql)
        catalog.append_rows("events", [["view", "east", 4]])
        snapshot = catalog.snapshot(freeze=False)
        probed = snapshot.cached_result(sql)
        assert probed is not None
        assert probed.rows == [(5,)]
        assert catalog.cache_stats()["ivm_folds"] == 1

    def test_unpickled_snapshot_recomputes_cold(self):
        import pickle

        catalog = make_catalog()
        sql = "SELECT kind, count(*) AS n FROM events GROUP BY kind"
        catalog.execute(sql)
        shipped = pickle.loads(pickle.dumps(catalog.snapshot()))
        assert shipped.cached_result(sql) is None
        assert shipped.execute(sql).rows == catalog.execute(sql, COLD).rows


class TestShapeAnalysis:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT kind FROM events ORDER BY kind",
            "SELECT DISTINCT kind FROM events",
            "SELECT kind FROM events LIMIT 2",
            "SELECT kind, count(*) AS n FROM events GROUP BY kind HAVING count(*) > 1",
            "SELECT e.kind FROM events e, events f WHERE e.kind = f.kind",
            "SELECT kind FROM events WHERE value > (SELECT avg(value) FROM events)",
            "SELECT kind, row_number() OVER (ORDER BY value) AS r FROM events",
            "SELECT 1 AS one",
        ],
    )
    def test_non_maintainable_shapes_are_refused(self, sql):
        node = parse(sql)
        assert analyze(node, canonical_text(node)) is None

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT kind, count(*) AS n FROM events GROUP BY kind",
            "SELECT kind, value FROM events WHERE value > 3",
            "SELECT * FROM events",
            "SELECT sum(value) AS total FROM events WHERE kind = 'view'",
        ],
    )
    def test_maintainable_shapes_are_detected(self, sql):
        node = parse(sql)
        shape = analyze(node, canonical_text(node))
        assert shape is not None
        assert shape.table_name.lower() == "events"

    def test_explain_reports_the_maintainability_verdict(self):
        catalog = make_catalog()
        report = catalog.explain(
            "SELECT kind, count(*) AS n FROM events GROUP BY kind", physical=True
        )
        assert "ivm: maintainable (aggregate over events)" in report
        report = catalog.explain("SELECT kind FROM events ORDER BY kind", physical=True)
        assert "ivm: not maintainable" in report

    def test_explain_keeps_the_no_rewrites_marker(self):
        catalog = make_catalog()
        report = catalog.explain("SELECT * FROM events", physical=True)
        assert "(no rewrites applied)" in report


class TestVersionLogUnit:
    @staticmethod
    def _delta(i: int) -> AppendDelta:
        return AppendDelta(
            table="t", start_row=i, end_row=i + 1, from_version=(i,), to_version=(i + 1,)
        )

    def test_chain_walks_forward(self):
        log = VersionLog()
        for i in range(3):
            log.record(self._delta(i))
        chain = log.chain((0,), (3,))
        assert [d.start_row for d in chain] == [0, 1, 2]
        assert log.chain((1,), (3,)) is not None
        assert log.chain((0,), (0,)) == []

    def test_missing_link_yields_none(self):
        log = VersionLog()
        log.record(self._delta(0))
        log.record(self._delta(2))
        assert log.chain((0,), (3,)) is None

    def test_capacity_truncates_oldest(self):
        log = VersionLog(capacity=2)
        for i in range(4):
            log.record(self._delta(i))
        assert len(log) == 2
        assert log.chain((0,), (4,)) is None
        assert log.chain((2,), (4,)) is not None

    def test_self_loop_is_never_recorded(self):
        log = VersionLog()
        log.record(
            AppendDelta(table="t", start_row=0, end_row=0, from_version=(1,), to_version=(1,))
        )
        assert len(log) == 0

    def test_clear_truncates_everything(self):
        log = VersionLog()
        log.record(self._delta(0))
        log.clear()
        assert log.chain((0,), (1,)) is None


class TestStatsSurface:
    def test_effective_hit_rate_counts_folds(self):
        catalog = make_catalog()
        sql = "SELECT count(*) AS n FROM events"
        catalog.execute(sql)  # miss
        catalog.append_rows("events", [["view", "east", 4]])
        catalog.execute(sql)  # miss answered by fold
        stats = catalog.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert stats["ivm_folds"] == 1
        assert stats["hit_rate"] == 0.0
        assert stats["effective_hit_rate"] == pytest.approx(0.5)
        assert stats["folders"] == 1

    def test_service_stats_surface_ivm_counters(self):
        from repro.datasets import load_covid_catalog
        from repro.serving import InterfaceService, ServiceConfig

        with InterfaceService(load_covid_catalog(), ServiceConfig(max_workers=2)) as service:
            session = service.create_session("ivm")
            sql = "SELECT state, count(*) AS n FROM covid_cases GROUP BY state"
            session.execute(sql)
            service.ingest("covid_cases", [["ZZ", "2021-11-05", 1]])
            session.refresh()
            session.execute(sql)
            data = service.stats_snapshot()
        assert data["ivm_folds"] >= 1
        assert data["ivm_fallbacks"] == 0
        assert 0.0 <= data["query_cache_hit_rate"] <= 1.0
        assert data["query_cache_effective_hit_rate"] >= data["query_cache_hit_rate"]
        assert session.stats.refreshes == 1
