"""End-to-end pipeline tests reproducing the paper's worked examples.

Each test corresponds to a figure or walkthrough step; the assertions check
the *shape* of the generated interfaces (which components appear, what they
control), not pixel-level output.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.interface import ChartType, InteractionType, LARGE_SCREEN, SMALL_SCREEN
from repro.pipeline import PipelineConfig, generate_interface, map_queries_statically


class TestFigure2Static:
    def test_one_static_chart_per_query(self, toy_catalog, fig2_queries):
        interface = map_queries_statically(fig2_queries, toy_catalog)
        assert interface.visualization_count == 3
        assert interface.widget_count == 0
        assert interface.interaction_count == 0
        assert {vis.chart_type for vis in interface.visualizations} == {ChartType.BAR}


class TestFigure1Sdss:
    def test_pi2_generates_pan_zoom_scatter(self, sdss_catalog, sdss_log):
        result = generate_interface(
            sdss_log,
            sdss_catalog,
            PipelineConfig(method="mcts", mcts_iterations=60, seed=1, name="sdss"),
        )
        interface = result.interface
        assert interface.visualization_count == 1
        vis = interface.visualizations[0]
        assert vis.chart_type is ChartType.SCATTER
        assert {vis.field_for(c) for c in list(vis.encodings and [e.channel for e in vis.encodings])} >= {"ra", "dec"}
        assert interface.interaction_count == 1
        interaction = interface.interactions[0]
        assert interaction.interaction_type is InteractionType.PAN_ZOOM
        assert {interaction.attribute, interaction.secondary_attribute} == {"ra", "dec"}
        assert result.forest.covers_all()


class TestFigure5MultiView:
    def test_click_on_bar_chart_binds_literal(self, toy_catalog, fig5_queries):
        result = generate_interface(
            fig5_queries,
            toy_catalog,
            PipelineConfig(method="exhaustive", exhaustive_depth=2, name="fig5"),
        )
        clicks = [
            i
            for i in result.interface.interactions
            if i.interaction_type is InteractionType.CLICK_SELECT
        ]
        assert clicks, "the literal choice over attribute a should map to a bar click"
        click = clicks[0]
        assert click.attribute == "a"
        source_vis = result.interface.visualization(click.source_vis_id)
        # The click happens on the chart of the *other* tree (Q3's bar chart).
        assert source_vis.tree_index not in {b.tree_index for b in click.bindings}


class TestCovidWalkthrough:
    def test_v1_overview_detail_with_brush(self, covid_catalog, covid_log):
        result = generate_interface(
            covid_log[:3],
            covid_catalog,
            PipelineConfig(
                method="mcts", mcts_iterations=80, seed=1, screen=LARGE_SCREEN, name="V1"
            ),
        )
        interface = result.interface
        assert interface.visualization_count == 2
        brushes = [
            i for i in interface.interactions if i.interaction_type is InteractionType.BRUSH_X
        ]
        assert brushes, "V1 must link the overview and detail charts with a brush"
        assert brushes[0].attribute == "date"
        assert brushes[0].is_linked()
        assert result.forest.covers_all()

    def test_v3_full_log_has_toggle_and_region_buttons(self, covid_catalog, covid_v3_log):
        result = generate_interface(
            covid_v3_log,
            covid_catalog,
            PipelineConfig(
                method="mcts", mcts_iterations=120, seed=1, screen=LARGE_SCREEN, name="V3"
            ),
        )
        interface = result.interface
        assert interface.visualization_count >= 2
        # The region button pair of walkthrough step 3.
        region_widgets = [
            w for w in interface.widgets if set(w.options or []) == {"South", "Northeast"}
        ]
        assert region_widgets
        # Interactions survive from the earlier versions (date brushing).
        assert interface.interaction_count >= 1
        # Structure-changing widgets (the OPT toggle for the subquery filter).
        assert interface.has_structural_widgets()

    def test_versions_grow_monotonically(self, covid_catalog, covid_v3_log):
        components = []
        for upto in (3, 4, 6):
            result = generate_interface(
                covid_v3_log[:upto],
                covid_catalog,
                PipelineConfig(method="greedy", screen=LARGE_SCREEN),
            )
            components.append(result.interface.component_count())
        assert components[0] <= components[1] <= components[2]


class TestScreenAwareness:
    def test_small_screen_changes_layout_not_coverage(self, covid_catalog, covid_log):
        large = generate_interface(
            covid_log[:4], covid_catalog, PipelineConfig(method="greedy", screen=LARGE_SCREEN)
        )
        small = generate_interface(
            covid_log[:4], covid_catalog, PipelineConfig(method="greedy", screen=SMALL_SCREEN)
        )
        assert large.forest.covers_all() and small.forest.covers_all()
        if small.interface.visualization_count > 1:
            assert small.interface.layout.uses_tabs
        assert not large.interface.layout.uses_tabs


class TestPipelineConfigs:
    def test_unknown_method_rejected(self, toy_catalog, fig2_queries):
        with pytest.raises(ReproError):
            generate_interface(fig2_queries, toy_catalog, PipelineConfig(method="magic"))

    def test_empty_query_log_rejected(self, toy_catalog):
        with pytest.raises(ReproError):
            generate_interface([], toy_catalog)

    def test_method_none_returns_initial_state(self, toy_catalog, fig2_queries):
        result = generate_interface(fig2_queries, toy_catalog, PipelineConfig(method="none"))
        assert result.strategy == "none"
        assert result.interface.visualization_count == len(fig2_queries)

    def test_summary_fields(self, toy_catalog, fig2_queries):
        result = generate_interface(
            fig2_queries, toy_catalog, PipelineConfig(method="greedy", name="toy")
        )
        summary = result.summary()
        for key in (
            "strategy",
            "total_cost",
            "cost",
            "visualizations",
            "widgets",
            "interactions",
            "trees",
            "candidates_evaluated",
            "elapsed_seconds",
        ):
            assert key in summary

    def test_sp500_scenario_end_to_end(self, sp500_catalog, sp500_log):
        result = generate_interface(
            sp500_catalog and sp500_log,
            sp500_catalog,
            PipelineConfig(method="greedy", name="sp500"),
        )
        assert result.interface.visualization_count >= 1
        assert result.forest.covers_all()
        state = result.start_session(sp500_catalog)
        data = state.refresh_all()
        assert all(res.row_count > 0 for res in data.values())
