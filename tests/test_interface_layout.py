"""Tests for the screen-size-aware layout engine."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError
from repro.interface import (
    Channel,
    ChartType,
    ChoiceBinding,
    Encoding,
    LARGE_SCREEN,
    LayoutKind,
    MEDIUM_SCREEN,
    SMALL_SCREEN,
    ScreenSize,
    Visualization,
    Widget,
    WidgetType,
    compute_layout,
)
from repro.sql.schema import AttributeRole


def make_vis(vis_id: str) -> Visualization:
    return Visualization(
        vis_id=vis_id,
        chart_type=ChartType.LINE,
        encodings=[
            Encoding(Channel.X, "date", AttributeRole.TEMPORAL),
            Encoding(Channel.Y, "cases", AttributeRole.QUANTITATIVE),
        ],
    )


def make_widget(widget_id: str) -> Widget:
    return Widget(
        widget_id=widget_id,
        widget_type=WidgetType.TOGGLE,
        label="Filter",
        bindings=[ChoiceBinding(0, "opt_1")],
        default=True,
    )


class TestLayouts:
    def test_large_screen_places_charts_side_by_side(self):
        layout = compute_layout([make_vis("G1"), make_vis("G2")], [], LARGE_SCREEN)
        assert not layout.uses_tabs
        assert layout.charts_per_row() >= 2
        g1, g2 = layout.placement_for("G1"), layout.placement_for("G2")
        assert g1.y == g2.y
        assert g1.x != g2.x

    def test_small_screen_uses_tabs(self):
        layout = compute_layout([make_vis("G1"), make_vis("G2")], [], SMALL_SCREEN)
        assert layout.uses_tabs
        kinds = {node.kind for node in layout.root.walk()}
        assert LayoutKind.TABS in kinds

    def test_single_chart_small_screen_no_tabs(self):
        layout = compute_layout([make_vis("G1")], [], SMALL_SCREEN)
        assert not layout.uses_tabs

    def test_widget_panel_reserved_on_wide_screens(self):
        layout = compute_layout([make_vis("G1")], [make_widget("W1")], MEDIUM_SCREEN)
        placement = layout.placement_for("W1")
        assert placement.x > layout.placement_for("G1").x

    def test_all_components_placed(self):
        visualizations = [make_vis(f"G{i}") for i in range(1, 5)]
        widgets = [make_widget(f"W{i}") for i in range(1, 4)]
        layout = compute_layout(visualizations, widgets, MEDIUM_SCREEN)
        placed = {placement.component_id for placement in layout.placements}
        assert placed == {vis.vis_id for vis in visualizations} | {w.widget_id for w in widgets}
        layout_ids = set(layout.root.component_ids())
        assert layout_ids == placed

    def test_row_wrapping(self):
        visualizations = [make_vis(f"G{i}") for i in range(1, 6)]
        layout = compute_layout(visualizations, [], MEDIUM_SCREEN)
        rows = [node for node in layout.root.walk() if node.kind is LayoutKind.ROW]
        assert len(rows) >= 2

    def test_empty_interface_rejected(self):
        with pytest.raises(LayoutError):
            compute_layout([], [], MEDIUM_SCREEN)

    def test_missing_placement_raises(self):
        layout = compute_layout([make_vis("G1")], [], MEDIUM_SCREEN)
        with pytest.raises(LayoutError):
            layout.placement_for("nope")

    def test_screen_is_small_helper(self):
        assert SMALL_SCREEN.is_small()
        assert not LARGE_SCREEN.is_small()
        assert ScreenSize(650, 900).is_small()

    def test_describe_lists_components(self):
        layout = compute_layout([make_vis("G1")], [make_widget("W1")], MEDIUM_SCREEN)
        description = layout.describe()
        assert "G1" in description and "W1" in description
