"""Tests for Difftree construction: merging, choice nodes, forests.

These tests follow the worked examples of Section 2 of the paper (Figures
2-5) using the toy queries Q1-Q3.
"""

from __future__ import annotations

import pytest

from repro.difftree import (
    AnyNode,
    OptNode,
    build_forest,
    choice_contexts,
    collect_choice_nodes,
    covers,
    find_binding_for,
    merge_nodes,
    merge_query_sequence,
    parse_query_log,
    similarity_matrix,
    structural_similarity,
)
from repro.errors import MergeError
from repro.sql.parser import parse_select


class TestPairwiseMerge:
    def test_identical_queries_add_no_choices(self):
        q = parse_select("SELECT a FROM t WHERE a = 1")
        merged = merge_nodes(q, q)
        assert merged == q
        assert collect_choice_nodes(merged) == []

    def test_figure3a_predicate_choice(self, fig2_queries):
        """Q1/Q2 differ in both predicate operands → one ANY over whole predicates."""
        q1, q2 = parse_query_log(fig2_queries[:2])
        merged = merge_nodes(q1, q2)
        choices = collect_choice_nodes(merged)
        assert len(choices) == 1
        assert isinstance(choices[0], AnyNode)
        assert choices[0].cardinality == 2
        context = choice_contexts(merged)[0]
        assert context.clause == "where"
        assert context.alternative_kind == "predicate"

    def test_literal_only_difference_merges_in_place(self, fig5_queries):
        """Q1/Q2 of Figure 5 differ only in the literal → a = ANY(1, 2)."""
        q1, q2 = parse_query_log(fig5_queries[:2])
        merged = merge_nodes(q1, q2)
        contexts = choice_contexts(merged)
        assert len(contexts) == 1
        assert contexts[0].alternative_kind == "numeric_literal"
        assert contexts[0].target_attribute == "a"
        assert contexts[0].comparison_op == "="
        assert contexts[0].literal_values == (1, 2)

    def test_missing_where_becomes_opt(self):
        with_where = parse_select("SELECT a FROM t WHERE a = 1")
        without = parse_select("SELECT a FROM t")
        merged = merge_nodes(with_where, without)
        choices = collect_choice_nodes(merged)
        assert len(choices) == 1
        assert isinstance(choices[0], OptNode)

    def test_extra_conjunct_becomes_opt(self):
        base = parse_select("SELECT a FROM t WHERE a = 1")
        extended = parse_select("SELECT a FROM t WHERE a = 1 AND b = 2")
        merged = merge_nodes(base, extended)
        choices = collect_choice_nodes(merged)
        assert len(choices) == 1
        assert isinstance(choices[0], OptNode)
        assert covers(merged, [base, extended])

    def test_extra_select_item_becomes_opt(self):
        narrow = parse_select("SELECT date, sum(cases) FROM c GROUP BY date")
        wide = parse_select("SELECT date, state, sum(cases) FROM c GROUP BY date, state")
        merged = merge_nodes(narrow, wide)
        kinds = {type(node) for node in collect_choice_nodes(merged)}
        assert OptNode in kinds

    def test_different_limits_fall_back_to_query_choice(self):
        q1 = parse_select("SELECT a FROM t LIMIT 5")
        q2 = parse_select("SELECT a FROM t LIMIT 10")
        merged = merge_nodes(q1, q2)
        assert isinstance(merged, AnyNode)
        assert covers(merged, [q1, q2])

    def test_merging_text_literals(self):
        south = parse_select("SELECT a FROM t WHERE region = 'South'")
        northeast = parse_select("SELECT a FROM t WHERE region = 'Northeast'")
        merged = merge_nodes(south, northeast)
        context = choice_contexts(merged)[0]
        assert context.alternative_kind == "text_literal"
        assert set(context.literal_values) == {"South", "Northeast"}

    def test_three_way_merge_dedupes_alternatives(self):
        queries = parse_query_log(
            [
                "SELECT a FROM t WHERE region = 'South'",
                "SELECT a FROM t WHERE region = 'Northeast'",
                "SELECT a FROM t WHERE region = 'South'",
            ]
        )
        merged = merge_query_sequence(queries)
        choice = collect_choice_nodes(merged)[0]
        assert isinstance(choice, AnyNode)
        assert choice.cardinality == 2

    def test_empty_sequence_raises(self):
        with pytest.raises(MergeError):
            merge_query_sequence([])


class TestFigure4:
    def test_merged_tree_covers_all_three_queries(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="merged")
        assert forest.tree_count == 1
        tree = forest.trees[0]
        assert covers(tree, forest.queries)
        contexts = choice_contexts(tree)
        kinds = {context.kind for context in contexts}
        # Figure 4: an ANY in the SELECT clause and an OPT for the WHERE clause.
        assert "any" in kinds
        assert "opt" in kinds
        clauses = {context.clause for context in contexts}
        assert "select" in clauses
        assert "where" in clauses


class TestForests:
    def test_per_query_strategy(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="per_query")
        assert forest.tree_count == 3
        assert forest.members == [[0], [1], [2]]
        assert forest.choice_count() == 0
        assert forest.covers_all()

    def test_clustered_strategy_groups_similar_queries(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="clustered")
        assert forest.members[0] == [0, 1]
        assert forest.covers_all()

    def test_merge_trees_action(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="per_query")
        merged = forest.merge_trees(0, 1)
        assert merged.tree_count == 2
        assert merged.members[0] == [0, 1]
        # The original forest is unchanged (merge returns a copy).
        assert forest.tree_count == 3

    def test_merge_trees_bad_indices(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="per_query")
        with pytest.raises(MergeError):
            forest.merge_trees(0, 0)
        with pytest.raises(MergeError):
            forest.merge_trees(0, 9)

    def test_unknown_strategy(self, fig2_queries):
        with pytest.raises(MergeError):
            build_forest(fig2_queries, strategy="bogus")

    def test_empty_log(self):
        with pytest.raises(MergeError):
            build_forest([])

    def test_signature_distinguishes_structures(self, fig2_queries):
        forest = build_forest(fig2_queries, strategy="per_query")
        assert forest.signature() != forest.merge_trees(0, 1).signature()


class TestSimilarity:
    def test_similarity_bounds_and_symmetry(self, fig2_queries):
        matrix = similarity_matrix(fig2_queries)
        for i, row in enumerate(matrix):
            assert row[i] == 1.0
            for j, value in enumerate(row):
                assert 0.0 <= value <= 1.0
                assert value == pytest.approx(matrix[j][i])

    def test_similar_queries_score_higher(self, fig2_queries):
        q1, q2, q3 = parse_query_log(fig2_queries)
        assert structural_similarity(q1, q2) > structural_similarity(q2, q3)

    def test_coverage_of_sdss_log(self, sdss_log):
        forest = build_forest(sdss_log, strategy="merged")
        assert covers(forest.trees[0], forest.queries)

    def test_find_binding_reproduces_specific_query(self, fig2_queries):
        forest = build_forest(fig2_queries[:2], strategy="merged")
        target = parse_query_log(fig2_queries[:1])[0]
        binding = find_binding_for(forest.trees[0], target)
        assert binding is not None
