"""The unified ExecOptions API: coercion, compat shims, ExplainReport,
package exports, and the no-deprecated-callers lint.

Covers the redesign contract end to end: one frozen options object accepted
by every execute entry point (catalog, snapshot, session, service, process
tier), legacy keywords still working behind a DeprecationWarning with
identical behaviour, ``explain()`` returning structured data whose text is
byte-identical to the classic rendering, and a source lint asserting no
in-repo caller still uses the deprecated keyword form.
"""

from __future__ import annotations

import pickle
import re
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
from repro.engine.catalog import Catalog
from repro.engine.explain import ExplainReport
from repro.engine.options import DEFAULT_OPTIONS, ExecOptions, coerce_options

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "items",
        ["id", "kind", "price"],
        [[i, "ab"[i % 2], i * 3] for i in range(2000)],
    )
    cat.create_index("items", "id", "hash")
    return cat


class TestExecOptions:
    def test_frozen_and_defaults(self):
        options = ExecOptions()
        assert options.use_cache and options.optimize
        assert options.deadline is None and options.deadline_ms is None
        with pytest.raises(Exception):
            options.use_cache = False  # type: ignore[misc]

    def test_picklable(self):
        options = ExecOptions(use_cache=False, deadline=123.5)
        assert pickle.loads(pickle.dumps(options)) == options

    def test_pinned_resolves_relative_budget_once(self):
        options = ExecOptions(deadline_ms=50.0)
        pinned = options.pinned()
        assert pinned.deadline is not None and pinned.deadline_ms is None
        # Already-absolute options pin to themselves (no copy).
        assert pinned.pinned() is pinned

    def test_absolute_deadline_wins_over_relative(self):
        options = ExecOptions(deadline=99.0, deadline_ms=1.0)
        assert options.resolved_deadline() == 99.0


class TestCoercion:
    def test_exec_options_passes_through_unchanged(self):
        options = ExecOptions(use_cache=False)
        assert coerce_options(options, "here") is options

    def test_none_yields_defaults(self):
        assert coerce_options(None, "here") is DEFAULT_OPTIONS

    def test_legacy_keywords_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="use_cache"):
            options = coerce_options(None, "here", use_cache=False, optimize=None)
        assert options == ExecOptions(use_cache=False)

    def test_bare_bool_is_legacy_positional_use_cache(self):
        with pytest.warns(DeprecationWarning):
            options = coerce_options(False, "here")
        assert options.use_cache is False

    def test_mixing_options_and_legacy_raises(self):
        with pytest.raises(TypeError, match="ExecOptions"):
            coerce_options(ExecOptions(), "here", use_cache=False)

    def test_non_options_object_raises(self):
        with pytest.raises(TypeError):
            coerce_options("nope", "here")  # type: ignore[arg-type]


class TestEntryPoints:
    SQL = "SELECT kind, count(*) AS n FROM items GROUP BY kind"

    def test_catalog_execute_accepts_options(self, catalog):
        result = catalog.execute(self.SQL, ExecOptions(use_cache=False))
        assert result.row_count == 2

    def test_legacy_kwargs_warn_but_behave_identically(self, catalog):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            modern = catalog.execute(self.SQL, ExecOptions(use_cache=False))
        with pytest.warns(DeprecationWarning):
            legacy = catalog.execute(self.SQL, use_cache=False)
        assert modern.rows == legacy.rows

    def test_snapshot_execute_accepts_options(self, catalog):
        snapshot = catalog.snapshot()
        result = snapshot.execute(self.SQL, ExecOptions(use_cache=False))
        assert result.row_count == 2

    def test_session_and_service_thread_tier(self, catalog):
        from repro.serving import InterfaceService

        with InterfaceService(catalog) as service:
            session = service.create_session("opts")
            result = service.execute(
                session.session_id, self.SQL, ExecOptions(use_cache=False)
            )
            assert result.row_count == 2

    def test_service_process_tier_end_to_end(self, catalog):
        from repro.serving import InterfaceService, ServiceConfig

        config = ServiceConfig(execution_tier="process", worker_processes=1)
        with InterfaceService(catalog, config) as service:
            session = service.create_session("opts-proc")
            result = service.execute(
                session.session_id, self.SQL, ExecOptions(use_cache=False)
            )
            assert sorted(result.rows) == [("a", 1000), ("b", 1000)]

    def test_unoptimized_run_matches(self, catalog):
        on = catalog.execute(self.SQL, ExecOptions(use_cache=False))
        off = catalog.execute(self.SQL, ExecOptions(use_cache=False, optimize=False))
        assert sorted(on.rows) == sorted(off.rows)


class TestExplainReport:
    def test_report_is_text_compatible(self, catalog):
        report = catalog.explain("SELECT id FROM items WHERE id = 3", physical=True)
        assert isinstance(report, ExplainReport)
        assert isinstance(report, str)
        assert str(report) == report
        assert report.startswith("== Logical plan ==")

    def test_sections_are_structured(self, catalog):
        report = catalog.explain("SELECT id FROM items WHERE id = 3", physical=True)
        assert report.logical and report.physical and report.optimized
        assert all(isinstance(event, tuple) and len(event) == 2 for event in report.trace)
        data = report.as_dict()
        assert set(data) == {"logical", "trace", "optimized", "physical", "access_paths"}

    def test_access_paths_capture_index_choice(self, catalog):
        report = catalog.explain("SELECT id FROM items WHERE id = 3", physical=True)
        chosen = [d for d in report.access_paths if d.get("chosen")]
        assert any(d.get("decision") == "index_scan" for d in chosen)

    def test_logical_only_report(self, catalog):
        report = catalog.explain("SELECT id FROM items")
        assert report.physical is None
        assert report.logical == str(report)


class TestPackageSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_serving_entry_points_exported(self):
        for name in ("InterfaceService", "ServiceConfig", "Session", "ExecOptions",
                     "ExplainReport"):
            assert name in repro.__all__

    def test_import_has_no_cycles(self):
        """A cold ``import repro`` must succeed in a fresh interpreter."""
        proc = subprocess.run(
            [sys.executable, "-c", "import repro; print(len(repro.__all__))"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr


#: Call sites of the execute/explain family passing legacy keywords.  The
#: options shim itself and ``def`` lines are exempt; ExecOptions constructor
#: keywords don't match because the call must be a method on an object.
_DEPRECATED_CALL = re.compile(
    r"[\w\)\]]\.(execute|submit_execute|explain)\([^)\n]*"
    r"(use_cache=|optimize=|deadline=|deadline_ms=)"
)


class TestNoDeprecatedCallers:
    def test_src_and_benchmarks_use_exec_options(self):
        offenders: list[str] = []
        for root in (SRC_DIR / "repro", REPO_ROOT / "benchmarks"):
            for path in sorted(root.rglob("*.py")):
                for lineno, line in enumerate(path.read_text().splitlines(), 1):
                    if "ExecOptions(" in line:
                        continue
                    if _DEPRECATED_CALL.search(line):
                        offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {line.strip()}")
        assert not offenders, (
            "deprecated execute/explain keyword call sites (pass ExecOptions instead):\n"
            + "\n".join(offenders)
        )
