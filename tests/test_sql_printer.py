"""Tests for the SQL printer: exact renderings and parse/print round-trips."""

from __future__ import annotations

import pytest

from repro.sql.parser import parse
from repro.sql.printer import format_sql, to_sql

ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS bee FROM t",
    "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10 ORDER BY a DESC LIMIT 5",
    "SELECT a FROM t WHERE a NOT IN (1, 2, 3)",
    "SELECT a FROM t WHERE name LIKE 'ab%' AND a IS NOT NULL",
    "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id",
    "SELECT t.a FROM t LEFT JOIN u ON t.id = u.id AND u.x > 3",
    "SELECT x FROM (SELECT a AS x FROM t) AS sub",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
    "SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)",
    "WITH recent AS (SELECT a FROM t WHERE a > 1) SELECT a FROM recent",
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END AS size FROM t",
    "SELECT CAST(a AS float) FROM t",
    "SELECT a FROM t UNION ALL SELECT a FROM u",
    "SELECT count(DISTINCT a) FROM t",
    "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) >= 2 ORDER BY 2 DESC",
    "SELECT a FROM t ORDER BY a NULLS FIRST",
    "SELECT a FROM t LIMIT 10 OFFSET 20",
    "SELECT -2.5 AS neg, 'it''s' AS quoted",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_parse_print_parse_is_stable(self, sql):
        first = parse(sql)
        printed = to_sql(first)
        second = parse(printed)
        assert first == second, f"Round-trip changed the AST for: {sql}\n{printed}"

    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_printing_is_idempotent(self, sql):
        once = to_sql(parse(sql))
        twice = to_sql(parse(once))
        assert once == twice


class TestRenderings:
    def test_boolean_and_null_rendering(self):
        assert to_sql(parse("SELECT TRUE, FALSE, NULL")) == "SELECT TRUE, FALSE, NULL"

    def test_string_escaping(self):
        assert "''" in to_sql(parse("SELECT 'it''s'"))

    def test_and_or_parenthesization_preserves_semantics(self):
        sql = "SELECT a FROM t WHERE a = 1 OR b = 2 AND p = 3"
        printed = to_sql(parse(sql))
        assert parse(printed) == parse(sql)

    def test_not_renders_with_parentheses(self):
        printed = to_sql(parse("SELECT a FROM t WHERE NOT a = 1"))
        assert "NOT (" in printed

    def test_format_sql_is_multiline(self):
        pretty = format_sql(parse("SELECT a FROM t WHERE a = 1 GROUP BY a ORDER BY a"))
        lines = pretty.splitlines()
        assert len(lines) >= 4
        assert lines[0].startswith("SELECT")
        assert any(line.startswith("FROM") for line in lines)

    def test_format_sql_round_trips(self):
        sql = "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"
        assert parse(format_sql(parse(sql))) == parse(sql)

    def test_join_using_rendering(self):
        printed = to_sql(parse("SELECT * FROM a JOIN b USING (id)"))
        assert "USING (id)" in printed

    def test_alias_rendering(self):
        printed = to_sql(parse("SELECT a AS x FROM t AS s"))
        assert "AS x" in printed
        assert "t AS s" in printed
