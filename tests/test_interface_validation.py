"""Tests for Interface-level validation and bookkeeping (the I = (V, M, L) object)."""

from __future__ import annotations

import pytest

from repro.difftree import build_forest
from repro.errors import InterfaceError
from repro.interface import (
    Channel,
    ChartType,
    ChoiceBinding,
    Encoding,
    Interface,
    Visualization,
    Widget,
    WidgetType,
)
from repro.mapping import MappingConfig, map_forest_to_interface
from repro.sql.schema import AttributeRole


@pytest.fixture()
def simple_forest():
    return build_forest(
        ["SELECT a FROM t WHERE a = 1", "SELECT a FROM t"], strategy="merged"
    )


def make_vis(tree_index=0, vis_id="G1"):
    return Visualization(
        vis_id=vis_id,
        chart_type=ChartType.BAR,
        encodings=[
            Encoding(Channel.X, "a", AttributeRole.NOMINAL),
            Encoding(Channel.Y, "count", AttributeRole.QUANTITATIVE),
        ],
        tree_index=tree_index,
    )


def choice_id_of(forest):
    from repro.difftree import collect_choice_nodes

    return collect_choice_nodes(forest.trees[0])[0].choice_id


class TestValidation:
    def test_valid_interface_passes(self, simple_forest):
        widget = Widget(
            widget_id="W1",
            widget_type=WidgetType.TOGGLE,
            label="Filter",
            bindings=[ChoiceBinding(0, choice_id_of(simple_forest))],
            default=True,
        )
        interface = Interface(
            forest=simple_forest, visualizations=[make_vis()], widgets=[widget]
        )
        interface.validate()

    def test_unbound_choice_rejected(self, simple_forest):
        interface = Interface(forest=simple_forest, visualizations=[make_vis()])
        with pytest.raises(InterfaceError, match="not bound"):
            interface.validate()

    def test_binding_to_unknown_choice_rejected(self, simple_forest):
        widget = Widget(
            widget_id="W1",
            widget_type=WidgetType.TOGGLE,
            label="Filter",
            bindings=[ChoiceBinding(0, "nonexistent")],
            default=True,
        )
        interface = Interface(
            forest=simple_forest, visualizations=[make_vis()], widgets=[widget]
        )
        with pytest.raises(InterfaceError, match="unknown choice"):
            interface.validate()

    def test_binding_to_unknown_tree_rejected(self, simple_forest):
        widget = Widget(
            widget_id="W1",
            widget_type=WidgetType.TOGGLE,
            label="Filter",
            bindings=[ChoiceBinding(7, choice_id_of(simple_forest))],
            default=True,
        )
        interface = Interface(
            forest=simple_forest, visualizations=[make_vis()], widgets=[widget]
        )
        with pytest.raises(InterfaceError, match="unknown tree"):
            interface.validate()

    def test_visualization_for_unknown_tree_rejected(self, simple_forest):
        widget = Widget(
            widget_id="W1",
            widget_type=WidgetType.TOGGLE,
            label="Filter",
            bindings=[ChoiceBinding(0, choice_id_of(simple_forest))],
            default=True,
        )
        interface = Interface(
            forest=simple_forest, visualizations=[make_vis(tree_index=5)], widgets=[widget]
        )
        with pytest.raises(InterfaceError, match="unknown tree"):
            interface.validate()


class TestLookupsAndStats:
    def test_component_lookups(self, toy_catalog, fig2_queries):
        forest = build_forest(fig2_queries, strategy="clustered")
        interface = map_forest_to_interface(forest, toy_catalog.schemas(), MappingConfig())
        vis = interface.visualizations[0]
        assert interface.visualization(vis.vis_id) is vis
        with pytest.raises(InterfaceError):
            interface.visualization("G99")
        with pytest.raises(InterfaceError):
            interface.widget("W99")
        with pytest.raises(InterfaceError):
            interface.interaction("I99")

    def test_component_counts_and_bindings(self, toy_catalog, fig2_queries):
        forest = build_forest(fig2_queries, strategy="clustered")
        interface = map_forest_to_interface(forest, toy_catalog.schemas(), MappingConfig())
        assert interface.component_count() == (
            interface.visualization_count
            + interface.widget_count
            + interface.interaction_count
        )
        bound = interface.bound_choice_ids()
        assert bound == {
            context.choice_id
            for tree in forest.trees
            for context in __import__(
                "repro.difftree.tree_schema", fromlist=["choice_contexts"]
            ).choice_contexts(tree)
        }

    def test_summary_and_describe(self, toy_catalog, fig2_queries):
        forest = build_forest(fig2_queries, strategy="clustered")
        interface = map_forest_to_interface(
            forest, toy_catalog.schemas(), MappingConfig(name="toy")
        )
        summary = interface.summary()
        assert summary["name"] == "toy"
        assert summary["tree_count"] == forest.tree_count
        text = interface.describe()
        assert "Interface 'toy'" in text
        for vis in interface.visualizations:
            assert vis.vis_id in text

    def test_visualizations_for_tree(self, toy_catalog, fig2_queries):
        forest = build_forest(fig2_queries, strategy="per_query")
        interface = map_forest_to_interface(forest, toy_catalog.schemas(), MappingConfig())
        for index in range(forest.tree_count):
            charts = interface.visualizations_for_tree(index)
            assert len(charts) == 1
            assert charts[0].tree_index == index
