"""Tests for the interface cost model and its components."""

from __future__ import annotations

import pytest

from repro.cost import (
    CostModel,
    CostWeights,
    coverage_ratio,
    generality_score,
    interaction_cost,
    widget_cost,
)
from repro.difftree import build_forest
from repro.difftree.transformations import applicable_transformations
from repro.interface import (
    ChoiceBinding,
    InteractionType,
    VisInteraction,
    Widget,
    WidgetType,
)
from repro.mapping import MappingConfig, map_forest_to_interface


def build_interface(queries, catalog, strategy="merged", factor=False, screen=None):
    forest = build_forest(queries, strategy=strategy)
    if factor:
        for index, tree in enumerate(forest.trees):
            changed = True
            while changed:
                changed = False
                for transformation in applicable_transformations(tree):
                    if transformation.rule == "factor_common_root":
                        tree = transformation(tree)
                        changed = True
                        break
            forest = forest.replace_tree(index, tree)
    config = MappingConfig(screen=screen) if screen else MappingConfig()
    return map_forest_to_interface(forest, catalog.schemas(), config)


class TestComponentCosts:
    def test_widget_type_ordering(self):
        def cost_of(widget_type, options=()):
            return widget_cost(
                Widget(
                    widget_id="W",
                    widget_type=widget_type,
                    label="x",
                    bindings=[ChoiceBinding(0, "c")],
                    options=list(options),
                    domain=(0, 1),
                )
            )

        assert cost_of(WidgetType.TOGGLE) < cost_of(WidgetType.BUTTON_GROUP, ["a", "b"])
        assert cost_of(WidgetType.BUTTON_GROUP, ["a", "b"]) < cost_of(WidgetType.DROPDOWN, ["a", "b"])
        assert cost_of(WidgetType.DROPDOWN, ["a", "b"]) < cost_of(WidgetType.TABS, ["a", "b"])

    def test_long_option_lists_cost_more(self):
        short = Widget("W", WidgetType.RADIO, "x", [ChoiceBinding(0, "c")], options=["a", "b"])
        long = Widget(
            "W", WidgetType.RADIO, "x", [ChoiceBinding(0, "c")], options=[str(i) for i in range(12)]
        )
        assert widget_cost(long) > widget_cost(short)

    def test_raw_sql_options_cost_more(self):
        plain = Widget("W", WidgetType.RADIO, "x", [ChoiceBinding(0, "c")], options=["South", "North"])
        sqlish = Widget(
            "W",
            WidgetType.RADIO,
            "x",
            [ChoiceBinding(0, "c")],
            options=["date BETWEEN '2021-12-01' AND '2021-12-14'", "a = 1"],
        )
        assert widget_cost(sqlish) > widget_cost(plain)

    def test_interactions_cheaper_than_widgets(self):
        brush = VisInteraction(
            interaction_id="I",
            interaction_type=InteractionType.BRUSH_X,
            source_vis_id="G1",
            attribute="date",
            bindings=[ChoiceBinding(0, "a"), ChoiceBinding(0, "b")],
            target_vis_ids=["G2"],
        )
        widget = Widget(
            "W", WidgetType.RANGE_SLIDER, "date", [ChoiceBinding(0, "a")], domain=(0, 1)
        )
        assert interaction_cost(brush) < widget_cost(widget)

    def test_linked_interaction_discount(self):
        linked = VisInteraction(
            interaction_id="I",
            interaction_type=InteractionType.BRUSH_X,
            source_vis_id="G1",
            attribute="date",
            bindings=[ChoiceBinding(0, "a")],
            target_vis_ids=["G2"],
        )
        unlinked = VisInteraction(
            interaction_id="I",
            interaction_type=InteractionType.BRUSH_X,
            source_vis_id="G1",
            attribute="date",
            bindings=[ChoiceBinding(0, "a")],
            target_vis_ids=["G1"],
        )
        assert interaction_cost(linked) < interaction_cost(unlinked)


class TestCostModel:
    def test_breakdown_totals(self, sdss_catalog, sdss_log):
        interface = build_interface(sdss_log, sdss_catalog, factor=True)
        model = CostModel()
        breakdown = model.evaluate(interface)
        assert breakdown.total == pytest.approx(
            breakdown.visualization + breakdown.interaction + breakdown.layout + breakdown.expressiveness
        )
        assert breakdown.expressiveness == 0.0
        assert set(breakdown.as_dict()) == {
            "visualization",
            "interaction",
            "layout",
            "expressiveness",
            "total",
        }

    def test_weights_scale_terms(self, sdss_catalog, sdss_log):
        interface = build_interface(sdss_log, sdss_catalog, factor=True)
        plain = CostModel().evaluate(interface)
        weighted = CostModel(weights=CostWeights(interaction=0.0)).evaluate(interface)
        assert weighted.total < plain.total

    def test_factored_sdss_cheaper_than_static_pair(self, sdss_catalog, sdss_log):
        """The paper's Figure 1(c) interface should beat two static charts."""
        static = build_interface(sdss_log, sdss_catalog, strategy="per_query")
        interactive = build_interface(sdss_log, sdss_catalog, strategy="merged", factor=True)
        model = CostModel()
        assert model.evaluate(interactive).total < model.evaluate(static).total

    def test_duplicate_charts_penalized(self, covid_catalog, covid_log):
        duplicated = build_interface(covid_log[1:3], covid_catalog, strategy="per_query")
        merged = build_interface(covid_log[1:3], covid_catalog, strategy="merged", factor=True)
        model = CostModel()
        assert model.evaluate(merged).total < model.evaluate(duplicated).total

    def test_noisy_color_penalized(self, covid_catalog, covid_log):
        # Q4 (per-state breakdown) maps state onto color: 14 states > threshold.
        interface = build_interface([covid_log[3]], covid_catalog, strategy="per_query")
        with_cardinalities = CostModel(
            nominal_cardinalities={"state": 14}
        ).visualization_cost(interface)
        without = CostModel().visualization_cost(interface)
        assert with_cardinalities > without

    def test_expressiveness_penalty_for_uncovered_queries(self, covid_catalog, covid_log):
        interface = build_interface(covid_log[:2], covid_catalog, strategy="merged")
        # Tamper with the forest: pretend the tree also owns a query it cannot express.
        forest = interface.forest
        from repro.difftree import parse_query_log

        forest.queries.append(parse_query_log(["SELECT state FROM state_regions"])[0])
        forest.members[0].append(len(forest.queries) - 1)
        breakdown = CostModel().evaluate(interface)
        assert breakdown.expressiveness >= 10.0

    def test_check_expressiveness_flag(self, covid_catalog, covid_log):
        interface = build_interface(covid_log[:2], covid_catalog, strategy="merged")
        assert CostModel(check_expressiveness=False).expressiveness_cost(interface) == 0.0


class TestCoverageHelpers:
    def test_coverage_ratio_full(self, fig2_queries, toy_catalog):
        forest = build_forest(fig2_queries, strategy="clustered")
        assert coverage_ratio(forest) == 1.0

    def test_generality_grows_with_choices(self, fig2_queries):
        per_query = build_forest(fig2_queries, strategy="per_query")
        merged = build_forest(fig2_queries, strategy="merged")
        assert generality_score(merged) > generality_score(per_query)
