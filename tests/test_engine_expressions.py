"""Unit tests for the expression evaluator (NULL semantics, operators, LIKE)."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.engine.expressions import Environment, ExpressionEvaluator, like_to_regex, sql_compare
from repro.sql.parser import Parser
from repro.sql.lexer import tokenize


def expr(text: str):
    """Parse a standalone expression by wrapping it in a SELECT."""
    parser = Parser(tokenize(f"SELECT {text}"))
    select = parser.parse_statement()
    return select.select_items[0].expr


@pytest.fixture()
def env() -> Environment:
    environment = Environment()
    environment.bind("t", {"a": 5, "b": None, "name": "Alice", "flag": True})
    return environment


@pytest.fixture()
def evaluator() -> ExpressionEvaluator:
    return ExpressionEvaluator()


class TestLiteralAndColumns:
    def test_literals(self, evaluator, env):
        assert evaluator.evaluate(expr("42"), env) == 42
        assert evaluator.evaluate(expr("4.5"), env) == 4.5
        assert evaluator.evaluate(expr("'hi'"), env) == "hi"
        assert evaluator.evaluate(expr("TRUE"), env) is True
        assert evaluator.evaluate(expr("NULL"), env) is None

    def test_column_resolution(self, evaluator, env):
        assert evaluator.evaluate(expr("a"), env) == 5
        assert evaluator.evaluate(expr("t.a"), env) == 5

    def test_unknown_column_raises(self, evaluator, env):
        with pytest.raises(ExecutionError):
            evaluator.evaluate(expr("zzz"), env)

    def test_ambiguous_column_raises(self, evaluator):
        environment = Environment()
        environment.bind("x", {"a": 1})
        environment.bind("y", {"a": 2})
        with pytest.raises(ExecutionError):
            ExpressionEvaluator().evaluate(expr("a"), environment)

    def test_parent_scope_resolution(self, evaluator, env):
        child = env.child()
        child.bind("u", {"c": 7})
        assert evaluator.evaluate(expr("a"), child) == 5
        assert evaluator.evaluate(expr("c"), child) == 7

    def test_alias_resolution(self, evaluator):
        environment = Environment()
        environment.aliases["total"] = 99
        assert evaluator.evaluate(expr("total"), environment) == 99

    def test_parameters(self, env):
        evaluator = ExpressionEvaluator(parameters={"threshold": 10})
        assert evaluator.evaluate(expr(":threshold"), env) == 10
        with pytest.raises(ExecutionError):
            evaluator.evaluate(expr(":missing"), env)


class TestArithmeticAndNulls:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("7 / 2", 3.5),
            ("7 % 3", 1),
            ("-a", -5),
            ("a + 1", 6),
            ("'ab' || 'cd'", "abcd"),
        ],
    )
    def test_arithmetic(self, evaluator, env, text, expected):
        assert evaluator.evaluate(expr(text), env) == expected

    def test_null_propagation_through_arithmetic(self, evaluator, env):
        assert evaluator.evaluate(expr("b + 1"), env) is None
        assert evaluator.evaluate(expr("b * 2"), env) is None
        assert evaluator.evaluate(expr("-b"), env) is None

    def test_division_by_zero_is_null(self, evaluator, env):
        assert evaluator.evaluate(expr("1 / 0"), env) is None
        assert evaluator.evaluate(expr("1 % 0"), env) is None

    def test_type_error_raises(self, evaluator, env):
        with pytest.raises(ExecutionError):
            evaluator.evaluate(expr("name - 1"), env)


class TestBooleanLogic:
    def test_three_valued_and(self, evaluator, env):
        assert evaluator.evaluate(expr("TRUE AND NULL"), env) is None
        assert evaluator.evaluate(expr("FALSE AND NULL"), env) is False
        assert evaluator.evaluate(expr("TRUE AND TRUE"), env) is True

    def test_three_valued_or(self, evaluator, env):
        assert evaluator.evaluate(expr("TRUE OR NULL"), env) is True
        assert evaluator.evaluate(expr("FALSE OR NULL"), env) is None
        assert evaluator.evaluate(expr("FALSE OR FALSE"), env) is False

    def test_not_null(self, evaluator, env):
        assert evaluator.evaluate(expr("NOT NULL"), env) is None
        assert evaluator.evaluate(expr("NOT FALSE"), env) is True

    def test_is_truthy_treats_null_as_false(self, evaluator, env):
        assert evaluator.is_truthy(expr("NULL"), env) is False
        assert evaluator.is_truthy(expr("1 = 1"), env) is True

    def test_comparisons_with_null(self, evaluator, env):
        assert evaluator.evaluate(expr("b = 1"), env) is None
        assert evaluator.evaluate(expr("b <> 1"), env) is None

    def test_between_and_in_null_handling(self, evaluator, env):
        assert evaluator.evaluate(expr("b BETWEEN 1 AND 10"), env) is None
        assert evaluator.evaluate(expr("a IN (1, 2)"), env) is False
        assert evaluator.evaluate(expr("a IN (5, NULL)"), env) is True
        assert evaluator.evaluate(expr("a IN (1, NULL)"), env) is None
        assert evaluator.evaluate(expr("a NOT IN (1, 2)"), env) is True

    def test_is_null(self, evaluator, env):
        assert evaluator.evaluate(expr("b IS NULL"), env) is True
        assert evaluator.evaluate(expr("a IS NOT NULL"), env) is True


class TestLikeAndCase:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("Alice", "A%", True),
            ("Alice", "%ce", True),
            ("Alice", "A_ice", True),
            ("Alice", "B%", False),
            ("a.c", "a.c", True),
            ("abc", "a.c", False),  # '.' is literal, not a regex wildcard
        ],
    )
    def test_like(self, evaluator, env, value, pattern, expected):
        assert evaluator.evaluate(expr(f"'{value}' LIKE '{pattern}'"), env) is expected

    def test_like_regex_is_anchored(self):
        assert like_to_regex("b%").match("abc") is None

    def test_case_first_matching_arm(self, evaluator, env):
        value = evaluator.evaluate(
            expr("CASE WHEN a > 10 THEN 'big' WHEN a > 1 THEN 'medium' ELSE 'small' END"), env
        )
        assert value == "medium"

    def test_case_without_else_is_null(self, evaluator, env):
        assert evaluator.evaluate(expr("CASE WHEN a > 10 THEN 1 END"), env) is None

    def test_cast(self, evaluator, env):
        assert evaluator.evaluate(expr("CAST('3' AS integer)"), env) == 3
        assert evaluator.evaluate(expr("CAST(a AS text)"), env) == "5"
        assert evaluator.evaluate(expr("CAST(NULL AS integer)"), env) is None
        with pytest.raises(ExecutionError):
            evaluator.evaluate(expr("CAST('x' AS integer)"), env)

    def test_scalar_function_call(self, evaluator, env):
        assert evaluator.evaluate(expr("upper(name)"), env) == "ALICE"

    def test_aggregate_outside_group_context_raises(self, evaluator, env):
        with pytest.raises(ExecutionError):
            evaluator.evaluate(expr("sum(a)"), env)

    def test_subquery_without_executor_raises(self, evaluator, env):
        with pytest.raises(ExecutionError):
            evaluator.evaluate(expr("(SELECT 1)"), env)


class TestHelpers:
    def test_sql_compare(self):
        assert sql_compare("<", 1, 2) is True
        assert sql_compare(">=", 2, 2) is True
        assert sql_compare("=", None, 1) is None
        with pytest.raises(ExecutionError):
            sql_compare("??", 1, 2)

    def test_merged_environment(self):
        left = Environment()
        left.bind("a", {"x": 1})
        right = Environment()
        right.bind("b", {"y": 2})
        merged = left.merged_with(right)
        assert merged.resolve(expr("x")) == 1
        assert merged.resolve(expr("y")) == 2
