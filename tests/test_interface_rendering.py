"""Tests for the Vega-Lite spec compiler and the standalone HTML renderer."""

from __future__ import annotations

import json

import pytest

from repro.interface import interface_spec, chart_spec, render_interface_html, save_interface_html
from repro.interface.html import render_chart_svg
from repro.pipeline import PipelineConfig, generate_interface


@pytest.fixture(scope="module")
def covid_result(covid_catalog, covid_log):
    return generate_interface(
        covid_log[:3],
        covid_catalog,
        PipelineConfig(method="mcts", mcts_iterations=60, seed=2, name="covid"),
    )


class TestVegaLite:
    def test_chart_spec_structure(self, covid_result, covid_catalog):
        state = covid_result.start_session(covid_catalog)
        vis = covid_result.interface.visualizations[0]
        spec = chart_spec(vis, state.data_for(vis.vis_id), covid_result.interface.interactions)
        assert spec["$schema"].startswith("https://vega.github.io/schema/vega-lite")
        assert spec["mark"]["type"] in ("line", "bar", "point", "area", "text")
        assert "x" in spec["encoding"] and "y" in spec["encoding"]
        assert spec["data"]["values"]

    def test_interface_spec_serializable(self, covid_result, covid_catalog):
        state = covid_result.start_session(covid_catalog)
        spec = interface_spec(covid_result.interface, state.refresh_all())
        text = json.dumps(spec, default=str)
        assert "vconcat" in spec
        assert len(text) > 100

    def test_interactions_become_params(self, sdss_catalog, sdss_log):
        # SDSS deterministically yields a pan/zoom interaction, which compiles
        # to an interval selection bound to the scales.
        result = generate_interface(
            sdss_log,
            sdss_catalog,
            PipelineConfig(method="exhaustive", exhaustive_depth=3, name="sdss"),
        )
        spec = interface_spec(result.interface)
        charts = spec["vconcat"]
        flattened = []
        for entry in charts:
            flattened.extend(entry.get("hconcat", [entry]))
        params = [p for chart in flattened for p in chart.get("params", [])]
        assert any(p.get("select", {}).get("type") == "interval" for p in params)

    def test_temporal_field_typed_correctly(self, covid_result):
        spec = interface_spec(covid_result.interface)
        text = json.dumps(spec)
        assert '"temporal"' in text


class TestHtmlRendering:
    def test_svg_for_line_chart(self, covid_result, covid_catalog):
        state = covid_result.start_session(covid_catalog)
        vis = covid_result.interface.visualizations[0]
        svg = render_chart_svg(vis, state.data_for(vis.vis_id))
        assert svg.startswith("<svg")
        assert "polyline" in svg or "rect" in svg

    def test_full_document(self, covid_result, covid_catalog, tmp_path):
        state = covid_result.start_session(covid_catalog)
        html = render_interface_html(covid_result.interface, state.refresh_all())
        assert html.startswith("<!DOCTYPE html>")
        assert "Query Log" in html
        assert "Vega-Lite specification" in html
        path = save_interface_html(covid_result.interface, tmp_path / "iface.html", state.refresh_all())
        assert path.exists()
        assert path.stat().st_size > 1000

    def test_html_escapes_sql(self, covid_result, covid_catalog):
        html = render_interface_html(covid_result.interface)
        assert "<script>" not in html
