"""EXPLAIN-style snapshot tests for logical → physical plan lowering.

These tests pin the operator pipeline the *lowerer* produces from a verbatim
logical plan (``explain(..., optimize=False)``): hash joins with extracted
equi-keys (and residual predicates), vectorized nested loops for non-equi
conditions, hash aggregation with HAVING above it, CTE materialization,
correlated-subquery filters and set operations.  Snapshots of the shapes the
logical optimizer rewrites plans into live in ``test_optimizer_rules.py``.
"""

from __future__ import annotations

import pytest

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.plan_nodes import (
    FilterExec,
    HashAggregateExec,
    JoinExec,
    ProjectExec,
    ScanExec,
    SetOpExec,
)
from repro.sql.parser import parse


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "sales",
        ["region", "product", "amount", "quantity"],
        [["east", "apple", 100, 10], ["west", "banana", 50, 5]],
    )
    cat.create_table("regions", ["region", "manager"], [["east", "alice"]])
    return cat


class TestJoinLowering:
    def test_equi_join_lowered_to_hash_join_with_residual(self, catalog):
        plan = catalog.explain(
            "SELECT s.product, r.manager FROM sales s "
            "JOIN regions r ON s.region = r.region AND s.amount > 10",
            physical=True,
            optimize=False,
        )
        assert plan == (
            "Project(s.product, r.manager)\n"
            "  HashJoin(INNER, keys=[s.region = r.region], residual=s.amount > 10)\n"
            "    SeqScan(sales AS s)\n"
            "    SeqScan(regions AS r)"
        )

    def test_expression_keys_are_hashable_too(self, catalog):
        plan = catalog.explain(
            "SELECT s.product FROM sales s LEFT JOIN regions r "
            "ON upper(s.region) = upper(r.region)",
            physical=True,
            optimize=False,
        )
        assert "HashJoin(LEFT, keys=[upper(s.region) = upper(r.region)])" in plan

    def test_non_equi_join_falls_back_to_nested_loop(self, catalog):
        plan = catalog.explain(
            "SELECT s.product FROM sales s JOIN regions r ON s.amount > 10",
            physical=True,
            optimize=False,
        )
        assert "NestedLoopJoin(INNER, on=s.amount > 10)" in plan

    def test_using_join_is_hash_joined(self, catalog):
        plan = catalog.explain(
            "SELECT manager FROM sales JOIN regions USING (region)", physical=True
        )
        assert "HashJoin(INNER, using=['region'])" in plan

    def test_ambiguous_unqualified_key_stays_in_nested_loop(self, catalog):
        # 'region' exists on both sides, so the equality cannot be assigned a
        # side at compile time and must stay a residual condition.
        plan = catalog.explain(
            "SELECT product FROM sales JOIN regions ON region = manager",
            physical=True,
            optimize=False,
        )
        assert "NestedLoopJoin" in plan

    def test_logical_join_plan_unchanged(self, catalog):
        plan = catalog.explain(
            "SELECT s.product FROM sales s JOIN regions r ON s.region = r.region"
        )
        assert plan == (
            "Project(s.product)\n"
            "  Join(INNER, on=s.region = r.region)\n"
            "    Scan(sales AS s)\n"
            "    Scan(regions AS r)"
        )


class TestAggregateLowering:
    def test_grouped_aggregate_pipeline(self, catalog):
        plan = catalog.explain(
            "SELECT region, count(*) AS n FROM sales WHERE amount > 10 "
            "GROUP BY region HAVING count(*) >= 1 ORDER BY n DESC LIMIT 2",
            physical=True,
            optimize=False,
        )
        assert plan == (
            "Limit(limit=2, offset=None)\n"
            "  Sort(n DESC)\n"
            "    Project(region, count(*) AS n)\n"
            "      Filter[having](count(*) >= 1)\n"
            "        HashAggregate(group_by=[region], aggregates=[count(*)])\n"
            "          Filter[where](amount > 10)\n"
            "            SeqScan(sales)"
        )

    def test_order_by_aggregate_is_planned_into_the_aggregate(self, catalog):
        # Aggregates appearing only in ORDER BY must still be computed by the
        # aggregation operator (they are not in the SELECT list).
        physical = Executor(catalog).compile(
            parse("SELECT region FROM sales GROUP BY region ORDER BY sum(amount)")
        )
        aggregate = next(
            node for node in physical.walk() if isinstance(node, HashAggregateExec)
        )
        assert [str(call.name) for call in aggregate.aggregates] == ["sum"]

    def test_aggregate_inside_subquery_does_not_group_outer_query(self, catalog):
        physical = Executor(catalog).compile(
            parse("SELECT product FROM sales WHERE amount > (SELECT avg(amount) FROM sales)")
        )
        assert not any(isinstance(node, HashAggregateExec) for node in physical.walk())

    def test_star_projection_disallowed_above_aggregate(self, catalog):
        physical = Executor(catalog).compile(
            parse("SELECT region, count(*) FROM sales GROUP BY region")
        )
        project = next(node for node in physical.walk() if isinstance(node, ProjectExec))
        assert project.allow_star is False
        plain = Executor(catalog).compile(parse("SELECT * FROM sales"))
        project = next(node for node in plain.walk() if isinstance(node, ProjectExec))
        assert project.allow_star is True


class TestSubqueryAndCteLowering:
    def test_correlated_subquery_stays_in_filter_predicate(self, catalog):
        plan = catalog.explain(
            "SELECT s.product FROM sales s WHERE s.amount >= "
            "(SELECT max(s2.amount) FROM sales s2 WHERE s2.region = s.region)",
            physical=True,
            optimize=False,
        )
        assert plan == (
            "Project(s.product)\n"
            "  Filter[where](s.amount >= (SELECT max(s2.amount) "
            "FROM sales AS s2 WHERE s2.region = s.region))\n"
            "    SeqScan(sales AS s)"
        )

    def test_cte_lowered_to_materialization(self, catalog):
        plan = catalog.explain(
            "WITH t AS (SELECT region, sum(amount) AS total FROM sales GROUP BY region) "
            "SELECT region FROM t WHERE total > 10",
            physical=True,
            optimize=False,
        )
        assert plan == (
            "MaterializeCtes(t)\n"
            "  Project(region, sum(amount) AS total)\n"
            "    HashAggregate(group_by=[region], aggregates=[sum(amount)])\n"
            "      SeqScan(sales)\n"
            "  Project(region)\n"
            "    Filter[where](total > 10)\n"
            "      SeqScan(t)"
        )

    def test_derived_table_plan(self, catalog):
        plan = catalog.explain(
            "SELECT big.product FROM (SELECT product, amount FROM sales "
            "WHERE amount > 90) AS big",
            physical=True,
            optimize=False,
        )
        assert plan == (
            "Project(big.product)\n"
            "  DerivedScan(big)\n"
            "    Project(product, amount)\n"
            "      Filter[where](amount > 90)\n"
            "        SeqScan(sales)"
        )


class TestSetOperationLowering:
    def test_union_lowering(self, catalog):
        plan = catalog.explain(
            "SELECT region FROM sales UNION SELECT region FROM regions",
            physical=True,
            optimize=False,
        )
        assert plan == (
            "SetOp(UNION)\n"
            "  Project(region)\n"
            "    SeqScan(sales)\n"
            "  Project(region)\n"
            "    SeqScan(regions)"
        )

    def test_set_op_physical_nodes(self, catalog):
        physical = Executor(catalog).compile(
            parse("SELECT region FROM sales EXCEPT SELECT region FROM regions")
        )
        assert isinstance(physical, SetOpExec)
        assert physical.op == "EXCEPT"
        scans = [node for node in physical.walk() if isinstance(node, ScanExec)]
        assert {scan.table_name for scan in scans} == {"sales", "regions"}


class TestCompiledPlanReuse:
    def test_plan_cache_reuses_compiled_plans(self, catalog):
        catalog.execute("SELECT product FROM sales WHERE amount > 10", use_cache=False)
        entries = catalog.cache_stats()["plan_cache_entries"]
        catalog.execute("SELECT product FROM sales WHERE amount > 10", use_cache=False)
        assert catalog.cache_stats()["plan_cache_entries"] == entries

    def test_plan_cache_cleared_on_schema_change(self, catalog):
        catalog.execute("SELECT product FROM sales", use_cache=False)
        assert catalog.cache_stats()["plan_cache_entries"] > 0
        catalog.create_table("extra", ["x"], [[1]])
        assert catalog.cache_stats()["plan_cache_entries"] == 0

    def test_compiled_plan_is_stateless_across_runs(self, catalog):
        executor = Executor(catalog)
        node = parse("SELECT region, sum(amount) AS total FROM sales GROUP BY region")
        plan = executor.compile(node)
        first = executor.execute(node)
        second = executor.execute(node)
        assert first.rows == second.rows
        assert executor.compile(node) is plan

    def test_physical_plan_contains_no_interpreter_state(self, catalog):
        physical = Executor(catalog).compile(
            parse("SELECT region FROM sales WHERE amount > 10")
        )
        filters = [node for node in physical.walk() if isinstance(node, FilterExec)]
        joins = [node for node in physical.walk() if isinstance(node, JoinExec)]
        assert len(filters) == 1 and not joins
