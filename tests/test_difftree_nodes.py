"""Unit tests for the Difftree node model and its helpers."""

from __future__ import annotations

import pytest

from repro.difftree.nodes import (
    AnyNode,
    OptNode,
    choice_node_by_id,
    collect_choice_nodes,
    count_choice_nodes,
    count_static_nodes,
    is_choice_node,
    parent_of,
    reset_choice_ids,
)
from repro.errors import DifftreeError
from repro.sql.ast_nodes import ColumnRef, Literal
from repro.sql.parser import parse_select


class TestChoiceNodeBasics:
    def test_any_node_properties(self):
        node = AnyNode(alternatives=[Literal(1), Literal(2.5)])
        assert node.cardinality == 2
        assert node.is_literal_choice()
        assert node.is_numeric_literal_choice()
        assert node.literal_values() == [1, 2.5]
        assert is_choice_node(node)

    def test_text_literal_choice_is_not_numeric(self):
        node = AnyNode(alternatives=[Literal("a"), Literal("b")])
        assert node.is_literal_choice()
        assert not node.is_numeric_literal_choice()

    def test_boolean_literals_are_not_numeric(self):
        node = AnyNode(alternatives=[Literal(True), Literal(False)])
        assert not node.is_numeric_literal_choice()

    def test_column_choice(self):
        node = AnyNode(alternatives=[ColumnRef("a"), ColumnRef("b")])
        assert node.is_column_choice()
        assert not node.is_literal_choice()
        with pytest.raises(DifftreeError):
            node.literal_values()

    def test_choice_ids_are_unique_and_stable(self):
        first = AnyNode(alternatives=[Literal(1), Literal(2)])
        second = AnyNode(alternatives=[Literal(1), Literal(2)])
        assert first.choice_id != second.choice_id
        # Equality is structural: ids do not participate.
        assert first == second

    def test_explicit_choice_id_preserved(self):
        node = AnyNode(alternatives=[Literal(1)], choice_id="my_choice")
        assert node.choice_id == "my_choice"

    def test_opt_node_defaults(self):
        node = OptNode(child=Literal(1))
        assert node.default_on is True
        assert node.kind == "OptNode"

    def test_reset_choice_ids(self):
        reset_choice_ids()
        node = AnyNode(alternatives=[Literal(1)])
        assert node.choice_id == "any_1"


class TestTreeHelpers:
    def test_collect_and_count(self):
        query = parse_select("SELECT a FROM t WHERE a = 1")
        opt = OptNode(child=query.where)
        tree = query.with_children([query.select_items[0], query.from_clause, opt])
        choices = collect_choice_nodes(tree)
        assert [type(node) for node in choices] == [OptNode]
        assert count_choice_nodes(tree) == 1
        assert count_static_nodes(tree) == count_static_nodes(query)

    def test_choice_node_by_id(self):
        any_node = AnyNode(alternatives=[Literal(1), Literal(2)])
        assert choice_node_by_id(any_node, any_node.choice_id) is any_node
        with pytest.raises(DifftreeError):
            choice_node_by_id(any_node, "missing")

    def test_parent_of(self):
        query = parse_select("SELECT a FROM t WHERE a = 1")
        where = query.where
        assert parent_of(query, where) is query
        assert parent_of(query, query) is None

    def test_walk_includes_alternatives(self):
        node = AnyNode(alternatives=[Literal(1), ColumnRef("x")])
        kinds = {type(descendant).__name__ for descendant in node.walk()}
        assert kinds == {"AnyNode", "Literal", "ColumnRef"}
