"""Differential / fuzz harness: the engine against itself and against sqlite3.

A seeded random query generator produces a few hundred SQL statements over
NULL-heavy fixture tables (filters, multi-way joins, group-by/HAVING, CTEs,
derived tables, correlated subqueries, set operations).  Every query runs
three ways:

* through the engine with the logical optimizer **on** (the default path),
* through the engine with the optimizer **off** (verbatim lowering),
* through ``sqlite3`` as an independent oracle,

and all three results must be **bag-equal** (same multiset of rows, compared
positionally with floats rounded).  This machine-checks the optimizer's core
contract — every rewrite preserves results — in the spirit of automated
SQL-equivalence checking.

A second generated suite biases predicates toward *indexed* columns and runs
each query four ways — an index-carrying catalog with the optimizer on
(IndexScan plans) and off (escape hatch), the plain catalog, and sqlite —
extending the same oracle to the access-path selection layer.

Seed policy: the generator is seeded from ``DIFFERENTIAL_SEED`` (default
20260727) and generates ``DIFFERENTIAL_QUERY_COUNT`` queries (default 200; CI
raises it).  A failure report names the seed and query index, so any failure
is reproducible with::

    DIFFERENTIAL_SEED=<seed> PYTHONPATH=src python -m pytest tests/test_differential_sqlite.py

On mismatch the harness *shrinks* the failing query (dropping clauses, legs
and joins while the mismatch persists) and writes the original + shrunk SQL
to ``tests/artifacts/differential/`` — CI uploads that directory as the
failing-query corpus.  See docs/TESTING.md.
"""

from __future__ import annotations

import os
import random
import sqlite3
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Iterator

import pytest

from repro.engine.catalog import Catalog
from repro.engine.options import ExecOptions
from repro.sql.ast_nodes import Join, Select, SetOperation, SqlNode
from repro.sql.parser import parse
from repro.sql.printer import to_sql

SEED = int(os.environ.get("DIFFERENTIAL_SEED", "20260727"))
QUERY_COUNT = int(os.environ.get("DIFFERENTIAL_QUERY_COUNT", "200"))
ARTIFACT_DIR = Path(__file__).parent / "artifacts" / "differential"

# --------------------------------------------------------------------------- #
# Fixture data (NULL-heavy, type-clean per column)
# --------------------------------------------------------------------------- #


def _build_rows(rng: random.Random):
    groups = ["a", "b", "c", "d", None]
    tags = ["red", "green", "blue", "mauve", None, None]
    cats = ["x", "y", "z", None]
    t_rows = [
        (
            i,
            rng.choice(groups),
            rng.choice([None, rng.randrange(0, 100)]) if rng.random() < 0.3 else rng.randrange(0, 100),
            None if rng.random() < 0.25 else round(rng.uniform(-5.0, 5.0), 3),
            rng.choice(tags),
        )
        for i in range(60)
    ]
    s_rows = [
        (
            i,
            None if rng.random() < 0.2 else rng.randrange(0, 75),  # some miss t.id
            None if rng.random() < 0.2 else rng.randrange(0, 500),
            rng.choice(cats),
        )
        for i in range(90)
    ]
    u_rows = [
        (rng.randrange(0, 6), rng.choice(["ab", "cd", "ef"]), rng.randrange(0, 20))
        for _ in range(12)
    ]
    return t_rows, s_rows, u_rows


TABLES = {
    "t": ["id", "grp", "val", "score", "tag"],
    "s": ["sid", "t_id", "amount", "cat"],
    "u": ["k", "label", "num"],
}

#: Secondary indexes the indexed-catalog fixture creates, and the columns the
#: index-biased generator aims its point/range predicates at.
INDEXED_COLUMNS = {
    "t": {"id": "hash", "val": "ordered"},
    "s": {"t_id": "hash", "amount": "ordered"},
}


@pytest.fixture(scope="module")
def oracle_pair():
    """(engine catalog, sqlite connection) over identical data."""
    rng = random.Random(SEED ^ 0xDA7A)
    t_rows, s_rows, u_rows = _build_rows(rng)
    catalog = Catalog()
    catalog.create_table("t", TABLES["t"], t_rows)
    catalog.create_table("s", TABLES["s"], s_rows)
    catalog.create_table("u", TABLES["u"], u_rows)

    connection = sqlite3.connect(":memory:")
    for name, rows in (("t", t_rows), ("s", s_rows), ("u", u_rows)):
        columns = ", ".join(TABLES[name])
        connection.execute(f"CREATE TABLE {name} ({columns})")
        placeholders = ", ".join("?" for _ in TABLES[name])
        connection.executemany(f"INSERT INTO {name} VALUES ({placeholders})", rows)
    yield catalog, connection
    connection.close()


@pytest.fixture(scope="module")
def indexed_catalog():
    """A second catalog over the *identical* rows, with secondary indexes.

    The same seed derivation as ``oracle_pair`` guarantees identical data, so
    the plain catalog / sqlite oracles remain valid for queries run here —
    any divergence is an index or access-path bug, not a data difference.
    """
    rng = random.Random(SEED ^ 0xDA7A)
    t_rows, s_rows, u_rows = _build_rows(rng)
    catalog = Catalog()
    catalog.create_table("t", TABLES["t"], t_rows)
    catalog.create_table("s", TABLES["s"], s_rows)
    catalog.create_table("u", TABLES["u"], u_rows)
    for table, columns in INDEXED_COLUMNS.items():
        for column, kind in columns.items():
            catalog.create_index(table, column, kind)
    return catalog


# --------------------------------------------------------------------------- #
# Result normalization and bag comparison
# --------------------------------------------------------------------------- #


def normalize_rows(rows: list[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    """Order-insensitive, float-tolerant canonical form of a result."""

    def norm(value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, bool):
            return round(float(value), 6)
        if isinstance(value, (int, float)):
            return round(float(value), 6)
        return value

    normalized = [tuple(norm(v) for v in row) for row in rows]
    return sorted(normalized, key=repr)


def run_engine(catalog: Catalog, sql: str, optimize: bool) -> list[tuple[Any, ...]]:
    return catalog.execute(sql, ExecOptions(use_cache=False, optimize=optimize)).rows


def run_sqlite(connection: sqlite3.Connection, sql: str) -> list[tuple[Any, ...]]:
    return [tuple(row) for row in connection.execute(sql).fetchall()]


def check_query(catalog: Catalog, connection: sqlite3.Connection, sql: str) -> str | None:
    """Run one query all three ways; return a mismatch description or None.

    Any execution error is reported too: the generator only emits well-typed
    queries, so an error on either side is itself a bug signal.
    """
    try:
        optimized = normalize_rows(run_engine(catalog, sql, optimize=True))
    except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
        return f"engine (optimizer on) raised {type(exc).__name__}: {exc}"
    try:
        verbatim = normalize_rows(run_engine(catalog, sql, optimize=False))
    except Exception as exc:  # noqa: BLE001
        return f"engine (optimizer off) raised {type(exc).__name__}: {exc}"
    try:
        oracle = normalize_rows(run_sqlite(connection, sql))
    except Exception as exc:  # noqa: BLE001
        return f"sqlite oracle raised {type(exc).__name__}: {exc}"
    if optimized != verbatim:
        return (
            "optimizer on/off disagree: "
            f"on={_preview(optimized)} off={_preview(verbatim)}"
        )
    if optimized != oracle:
        return (
            "engine/sqlite disagree: "
            f"engine={_preview(optimized)} sqlite={_preview(oracle)}"
        )
    return None


def _preview(rows: list[tuple[Any, ...]], limit: int = 6) -> str:
    head = ", ".join(repr(row) for row in rows[:limit])
    suffix = f", ... ({len(rows)} rows)" if len(rows) > limit else ""
    return f"[{head}{suffix}]"


# --------------------------------------------------------------------------- #
# Random query generator
# --------------------------------------------------------------------------- #


class QueryGenerator:
    """Generates SQL supported identically by the engine and sqlite3.

    Deliberately avoided constructs (documented divergences, not bugs):
    ``/`` (true vs integer division), ``%`` on negatives, LIMIT (bag
    comparison is order-insensitive), RIGHT/FULL joins (recent sqlite only),
    case-sensitive LIKE (all fixture text is lowercase), EXCEPT/INTERSECT
    ALL (unsupported by sqlite), and mixed-type comparisons.
    """

    def __init__(self, seed: int, index_bias: float = 0.0, window_bias: float = 0.0) -> None:
        self.rng = random.Random(seed)
        #: Probability that a generated predicate is a point-equality /
        #: range / IN / BETWEEN probe on an *indexed* column (see
        #: INDEXED_COLUMNS), steering the fuzz mass onto the access-path
        #: selection and IndexScan execution code.
        self.index_bias = index_bias
        #: Probability that a generated query is a window-function query
        #: (ranking, lag/lead, running aggregates over OVER clauses).
        self.window_bias = window_bias

    # -- helpers --------------------------------------------------------- #

    def choice(self, items):
        return self.rng.choice(items)

    def maybe(self, probability: float) -> bool:
        return self.rng.random() < probability

    def num_col(self, alias: str, table: str) -> str:
        columns = {"t": ["id", "val"], "s": ["sid", "t_id", "amount"], "u": ["k", "num"]}
        return f"{alias}.{self.choice(columns[table])}"

    def text_col(self, alias: str, table: str) -> str:
        columns = {"t": ["grp", "tag"], "s": ["cat"], "u": ["label"]}
        return f"{alias}.{self.choice(columns[table])}"

    def num_literal(self) -> str:
        return str(self.rng.randrange(-10, 120))

    def text_literal(self) -> str:
        return f"'{self.choice(['a', 'b', 'c', 'x', 'y', 'red', 'blue', 'ab', 'zz'])}'"

    # -- expressions ----------------------------------------------------- #

    def num_expr(self, alias: str, table: str, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth > 1 or roll < 0.45:
            return self.num_col(alias, table)
        if roll < 0.6:
            return self.num_literal()
        if roll < 0.7:
            return f"abs({self.num_expr(alias, table, depth + 1)})"
        if roll < 0.8:
            return f"coalesce({self.num_col(alias, table)}, {self.num_literal()})"
        op = self.choice(["+", "-", "*"])
        return (
            f"({self.num_expr(alias, table, depth + 1)} {op} "
            f"{self.num_expr(alias, table, depth + 1)})"
        )

    def indexed_predicate(self, aliases: list[tuple[str, str]]) -> str | None:
        """A point/range/IN/BETWEEN predicate on an indexed column, or None."""
        candidates = [
            (alias, table, column)
            for alias, table in aliases
            for column in INDEXED_COLUMNS.get(table, ())
        ]
        if not candidates:
            return None
        alias, table, column = self.choice(candidates)
        # Probe near the fixture's actual value domains so predicates hit.
        domain = {"id": 60, "val": 100, "t_id": 75, "amount": 500}[column]
        target = f"{alias}.{column}"
        kind = self.rng.randrange(5)
        if kind == 0:
            return f"{target} = {self.rng.randrange(domain)}"
        if kind == 1:
            op = self.choice(["<", "<=", ">", ">="])
            return f"{target} {op} {self.rng.randrange(domain)}"
        if kind == 2:
            low = self.rng.randrange(domain)
            return f"{target} BETWEEN {low} AND {low + self.rng.randrange(1, domain // 3 + 2)}"
        if kind == 3:
            items = ", ".join(
                str(self.rng.randrange(domain)) for _ in range(self.rng.randrange(2, 5))
            )
            return f"{target} IN ({items})"
        # Flipped literal-on-left comparison (the optimizer must normalize).
        op = self.choice(["<", ">", "="])
        return f"{self.rng.randrange(domain)} {op} {target}"

    def predicate(self, aliases: list[tuple[str, str]], depth: int = 0) -> str:
        if self.index_bias and self.rng.random() < self.index_bias:
            biased = self.indexed_predicate(aliases)
            if biased is not None:
                return biased
        alias, table = self.choice(aliases)
        roll = self.rng.random()
        if depth < 2 and roll < 0.25:
            connective = self.choice(["AND", "OR"])
            return (
                f"({self.predicate(aliases, depth + 1)} {connective} "
                f"{self.predicate(aliases, depth + 1)})"
            )
        if depth < 2 and roll < 0.3:
            return f"NOT ({self.predicate(aliases, depth + 1)})"
        kind = self.rng.randrange(8)
        if kind == 0:
            op = self.choice(["=", "<>", "<", "<=", ">", ">="])
            return f"{self.num_expr(alias, table)} {op} {self.num_literal()}"
        if kind == 1:
            op = self.choice(["=", "<>"])
            return f"{self.text_col(alias, table)} {op} {self.text_literal()}"
        if kind == 2:
            low = self.rng.randrange(-5, 60)
            return f"{self.num_col(alias, table)} BETWEEN {low} AND {low + self.rng.randrange(0, 50)}"
        if kind == 3:
            negated = "NOT " if self.maybe(0.3) else ""
            return f"{self.num_col(alias, table)} IS {negated}NULL"
        if kind == 4:
            items = ", ".join(self.num_literal() for _ in range(self.rng.randrange(2, 5)))
            negated = "NOT " if self.maybe(0.25) else ""
            return f"{self.num_col(alias, table)} {negated}IN ({items})"
        if kind == 5:
            pattern = self.choice(["'%a%'", "'r%'", "'%e'", "'__'"])
            return f"{self.text_col(alias, table)} LIKE {pattern}"
        if kind == 6:
            threshold = self.num_literal()
            return (
                f"CASE WHEN {self.num_col(alias, table)} > {threshold} "
                f"THEN 1 ELSE 0 END = 1"
            )
        op = self.choice(["<", ">", "="])
        return f"{self.num_col(alias, table)} {op} {self.num_col(alias, table)}"

    def correlated_exists(self, outer_alias: str) -> str:
        negated = "NOT " if self.maybe(0.3) else ""
        extra = f" AND sx.amount > {self.rng.randrange(0, 400)}" if self.maybe(0.5) else ""
        return (
            f"{negated}EXISTS (SELECT 1 FROM s sx "
            f"WHERE sx.t_id = {outer_alias}.id{extra})"
        )

    # -- FROM clauses ----------------------------------------------------- #

    def from_clause(self) -> tuple[str, list[tuple[str, str]]]:
        roll = self.rng.random()
        if roll < 0.35:
            table = self.choice(["t", "s", "u"])
            alias = table + "0"
            return f"{table} {alias}", [(alias, table)]
        if roll < 0.6:
            join = self.choice(["JOIN", "LEFT JOIN"])
            condition = "s0.t_id = t0.id"
            if self.maybe(0.3):
                condition += f" AND s0.amount > {self.rng.randrange(0, 300)}"
            return f"t t0 {join} s s0 ON {condition}", [("t0", "t"), ("s0", "s")]
        if roll < 0.75:
            # Comma join rescued by a WHERE equality (optimizer fodder).
            return "t t0, s s0", [("t0", "t"), ("s0", "s")]
        if roll < 0.9:
            join = self.choice(["JOIN", "LEFT JOIN"])
            return (
                f"t t0 JOIN s s0 ON s0.t_id = t0.id {join} u u0 ON u0.k = s0.t_id",
                [("t0", "t"), ("s0", "s"), ("u0", "u")],
            )
        return "t t0, s s0, u u0", [("t0", "t"), ("s0", "s"), ("u0", "u")]

    def where_clause(self, aliases: list[tuple[str, str]], comma_join: bool) -> str:
        conjuncts: list[str] = []
        if comma_join and len(aliases) >= 2:
            conjuncts.append("s0.t_id = t0.id")
            if len(aliases) >= 3:
                conjuncts.append("u0.k = s0.t_id")
        if self.maybe(0.8):
            conjuncts.append(self.predicate(aliases))
        if any(table == "t" for _, table in aliases) and self.maybe(0.25):
            conjuncts.append(self.correlated_exists("t0"))
        if any(table == "t" for _, table in aliases) and self.maybe(0.15):
            conjuncts.append("t0.val IN (SELECT u2.num FROM u u2)")
        if not conjuncts:
            return ""
        return " WHERE " + " AND ".join(conjuncts)

    # -- whole queries ---------------------------------------------------- #

    def simple_select(self) -> str:
        from_sql, aliases = self.from_clause()
        comma = "," in from_sql
        columns: list[str] = []
        for index in range(self.rng.randrange(1, 4)):
            alias, table = self.choice(aliases)
            if self.maybe(0.6):
                columns.append(f"{self.num_expr(alias, table)} AS c{index}")
            elif self.maybe(0.5):
                columns.append(f"{self.text_col(alias, table)} AS c{index}")
            else:
                expr = self.choice(
                    [
                        f"lower({self.text_col(alias, table)})",
                        f"length({self.text_col(alias, table)})",
                        f"CASE WHEN {self.num_col(alias, table)} > 40 THEN 'hi' ELSE 'lo' END",
                        f"coalesce({self.text_col(alias, table)}, 'none')",
                    ]
                )
                columns.append(f"{expr} AS c{index}")
        distinct = "DISTINCT " if self.maybe(0.2) else ""
        sql = f"SELECT {distinct}{', '.join(columns)} FROM {from_sql}"
        sql += self.where_clause(aliases, comma)
        if self.maybe(0.3):
            sql += " ORDER BY c0"
        return sql

    def aggregate_select(self) -> str:
        from_sql, aliases = self.from_clause()
        comma = "," in from_sql
        alias, table = self.choice(aliases)
        key_pool = {
            "t": ["t0.grp", "t0.tag"],
            "s": ["s0.cat"],
            "u": ["u0.label", "u0.k"],
        }
        keys: list[str] = []
        for candidate_alias, candidate_table in aliases:
            keys.extend(
                key
                for key in key_pool.get(candidate_table, [])
                if key.startswith(candidate_alias + ".")
            )
        group_keys = self.rng.sample(keys, k=min(len(keys), self.rng.randrange(1, 3)))
        aggregates = [
            self.choice(
                [
                    "count(*)",
                    f"count({self.num_col(alias, table)})",
                    f"count(DISTINCT {self.text_col(alias, table)})",
                    f"sum({self.num_col(alias, table)})",
                    f"avg({self.num_col(alias, table)})",
                    f"min({self.num_col(alias, table)})",
                    f"max({self.num_col(alias, table)})",
                ]
            )
            for _ in range(self.rng.randrange(1, 3))
        ]
        select_list = ", ".join(
            group_keys + [f"{agg} AS a{i}" for i, agg in enumerate(aggregates)]
        )
        sql = f"SELECT {select_list} FROM {from_sql}"
        sql += self.where_clause(aliases, comma)
        sql += " GROUP BY " + ", ".join(group_keys)
        if self.maybe(0.5):
            having = self.choice(
                [
                    "count(*) > 1",
                    "count(*) >= 2",
                    f"{group_keys[0]} IS NOT NULL",
                ]
            )
            sql += f" HAVING {having}"
        return sql

    def cte_select(self) -> str:
        shape = self.rng.randrange(3)
        if shape == 0:
            inner = "SELECT grp AS g, count(*) AS n, sum(val) AS total FROM t GROUP BY grp"
            joined = "SELECT t.id, w.n FROM t JOIN w ON w.g = t.grp"
            key = "g"
        elif shape == 1:
            inner = "SELECT t_id AS fk, count(*) AS n, max(amount) AS top FROM s GROUP BY t_id"
            joined = "SELECT t.id, w.n FROM t JOIN w ON w.fk = t.id"
            key = "fk"
        else:
            inner = f"SELECT id AS fk, val AS n FROM t WHERE val > {self.rng.randrange(0, 80)}"
            joined = "SELECT t.id, w.n FROM t JOIN w ON w.fk = t.id"
            key = "fk"
        if self.maybe(0.5):
            return (
                f"WITH w AS ({inner}) SELECT w.{key}, w.n FROM w "
                f"WHERE w.n > {self.rng.randrange(0, 3)}"
            )
        return f"WITH w AS ({inner}) {joined}"

    def derived_select(self) -> str:
        threshold = self.rng.randrange(0, 80)
        inner = self.choice(
            [
                "SELECT id AS a, val AS v, grp AS g FROM t WHERE val IS NOT NULL",
                f"SELECT sid AS a, amount AS v, cat AS g FROM s WHERE amount > {threshold}",
                "SELECT grp AS g, count(*) AS v, min(id) AS a FROM t GROUP BY grp",
            ]
        )
        outer_pred = self.choice(
            [f"d.v > {self.rng.randrange(0, 90)}", "d.g IS NOT NULL", f"d.a < {self.rng.randrange(10, 60)}"]
        )
        return f"SELECT d.a, d.v FROM ({inner}) d WHERE {outer_pred}"

    def setop_select(self) -> str:
        op = self.choice(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"])
        legs = [
            f"SELECT t0.grp AS g FROM t t0 WHERE {self.predicate([('t0', 't')])}",
            f"SELECT s0.cat AS g FROM s s0 WHERE {self.predicate([('s0', 's')])}",
            "SELECT u0.label AS g FROM u u0",
        ]
        left, right = self.rng.sample(legs, 2)
        return f"{left} {op} {right}"

    def scalar_subquery_select(self) -> str:
        aggregate = self.choice(["avg(val)", "max(val)", "min(val)", "count(*)"])
        return (
            f"SELECT t0.id, t0.val FROM t t0 "
            f"WHERE t0.val > (SELECT {aggregate} FROM t) - {self.rng.randrange(0, 60)}"
        )

    # -- window queries ---------------------------------------------------- #

    #: Per-table column pools for the window generator.  Window *values*
    #: depend on intra-partition order, so every shape whose output is
    #: order-sensitive (row_number, lag/lead, physical ROWS frames) appends
    #: the table's unique key to the OVER's ORDER BY, making the order total
    #: and the result deterministic on both substrates.
    WINDOW_UNIQUE = {"t": "id", "s": "sid"}
    WINDOW_NUM_COLS = {"t": ["val", "score", "id"], "s": ["amount", "sid"]}
    WINDOW_PART_COLS = {"t": ["grp", "tag"], "s": ["cat"]}

    def _window_over(self, alias: str, table: str, *, total: bool, frame: bool) -> str:
        """An OVER (...) clause; ``total`` forces a deterministic total order."""
        parts: list[str] = []
        if self.maybe(0.6):
            part_col = self.choice(self.WINDOW_PART_COLS[table])
            parts.append(f"PARTITION BY {alias}.{part_col}")
        order_col = self.choice(self.WINDOW_NUM_COLS[table])
        direction = " DESC" if self.maybe(0.3) else ""
        order = f"{alias}.{order_col}{direction}"
        unique = self.WINDOW_UNIQUE[table]
        if total and order_col != unique:
            order += f", {alias}.{unique}"
        parts.append(f"ORDER BY {order}")
        clause = " ".join(parts)
        if frame:
            low = self.rng.randrange(0, 4)
            kind = self.rng.randrange(3)
            if kind == 0:
                clause += f" ROWS BETWEEN {low} PRECEDING AND CURRENT ROW"
            elif kind == 1:
                clause += f" ROWS BETWEEN UNBOUNDED PRECEDING AND {low} FOLLOWING"
            else:
                high = self.rng.randrange(0, 3)
                clause += f" ROWS BETWEEN {low} PRECEDING AND {high} FOLLOWING"
        return f"OVER ({clause})"

    def window_item(self, alias: str, table: str, index: int) -> str:
        """One windowed SELECT item, deterministic under bag comparison."""
        col = self.choice([c for c in self.WINDOW_NUM_COLS[table] if c != self.WINDOW_UNIQUE[table]]
                          or self.WINDOW_NUM_COLS[table])
        roll = self.rng.random()
        if roll < 0.25:
            func = self.choice(["row_number()"])
            over = self._window_over(alias, table, total=True, frame=False)
        elif roll < 0.45:
            func = self.choice(["rank()", "dense_rank()"])
            over = self._window_over(alias, table, total=False, frame=False)
        elif roll < 0.65:
            offset = self.rng.randrange(0, 3)
            name = self.choice(["lag", "lead"])
            if self.maybe(0.5):
                func = f"{name}({alias}.{col}, {offset}, {self.rng.randrange(0, 9)})"
            else:
                func = f"{name}({alias}.{col}, {offset})"
            over = self._window_over(alias, table, total=True, frame=False)
        else:
            agg = self.choice(["sum", "avg", "min", "max", "count"])
            func = f"{agg}({alias}.{col})"
            use_frame = self.maybe(0.45)
            # Default frames are peer-extended (ties share the running
            # value), so ties are safe; physical frames need a total order.
            over = self._window_over(alias, table, total=use_frame, frame=use_frame)
        return f"{func} {over} AS w{index}"

    def window_select(self) -> str:
        table = self.choice(["t", "s"])
        alias = table + "0"
        unique = self.WINDOW_UNIQUE[table]
        roll = self.rng.random()
        if roll < 0.15:
            # Window over a derived table: the classic top-N-per-group shell,
            # plus an outer predicate that must stop at the window boundary.
            inner_items = ", ".join(
                [f"{alias}.{unique} AS k0", f"{alias}.{self.choice(self.WINDOW_PART_COLS[table])} AS g0",
                 self.window_item(alias, table, 1)]
            )
            inner = f"SELECT {inner_items} FROM {table} {alias}"
            outer_pred = self.choice(
                [f"d.w1 <= {self.rng.randrange(1, 8)}", "d.g0 IS NOT NULL",
                 f"d.k0 < {self.rng.randrange(20, 70)}"]
            )
            return f"SELECT d.k0, d.w1 FROM ({inner}) d WHERE {outer_pred}"
        if roll < 0.25:
            # Window over GROUP BY output: ranking groups by an aggregate.
            return (
                "SELECT grp, count(*) AS n, "
                "rank() OVER (ORDER BY count(*) DESC, grp) AS pos "
                "FROM t GROUP BY grp"
            )
        items = [f"{alias}.{unique} AS k0"]
        for index in range(1, self.rng.randrange(2, 4)):
            items.append(self.window_item(alias, table, index))
        sql = f"SELECT {', '.join(items)} FROM {table} {alias}"
        if self.maybe(0.5):
            sql += f" WHERE {self.predicate([(alias, table)])}"
        return sql

    def generate(self) -> str:
        if self.window_bias and self.rng.random() < self.window_bias:
            return self.window_select()
        roll = self.rng.random()
        if roll < 0.3:
            return self.simple_select()
        if roll < 0.55:
            return self.aggregate_select()
        if roll < 0.7:
            return self.cte_select()
        if roll < 0.8:
            return self.derived_select()
        if roll < 0.92:
            return self.setop_select()
        return self.scalar_subquery_select()


# --------------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------------- #


def _from_variants(node: SqlNode | None) -> Iterator[SqlNode]:
    if isinstance(node, Join):
        yield node.left
        yield node.right


def _reductions(node: SqlNode) -> Iterator[SqlNode]:
    """Candidate simplifications of a query AST, most aggressive first."""
    if isinstance(node, SetOperation):
        yield node.left
        yield node.right
        for leg_name in ("left", "right"):
            for reduced in _reductions(getattr(node, leg_name)):
                yield replace(node, **{leg_name: reduced})
        return
    if not isinstance(node, Select):
        return
    for variant in _from_variants(node.from_clause):
        yield replace(node, from_clause=variant)
    if node.where is not None:
        yield replace(node, where=None)
    if node.having is not None:
        yield replace(node, having=None)
    if node.ctes:
        yield replace(node, ctes=[])
    if node.order_by:
        yield replace(node, order_by=[])
    if node.distinct:
        yield replace(node, distinct=False)
    if node.group_by:
        yield replace(node, group_by=[], having=None)
    if len(node.select_items) > 1:
        for index in range(len(node.select_items)):
            items = node.select_items[:index] + node.select_items[index + 1 :]
            yield replace(node, select_items=items)


def failure_category(reason: str | None) -> str | None:
    """The failure class of a check result ('mismatch kind' or 'who raised').

    Shrinking must preserve the category: a reduction that turns a result
    mismatch into (say) an unknown-column error found a *different* problem —
    usually one the reduction itself introduced — and must be rejected.
    """
    if reason is None:
        return None
    return reason.split(":", 1)[0]


def shrink_query(sql: str, still_fails: Callable[[str], bool]) -> str:
    """Greedy fixpoint shrink: keep any reduction that still reproduces."""
    try:
        node = parse(sql)
    except Exception:  # noqa: BLE001 - unparseable means nothing to shrink
        return sql
    changed = True
    while changed:
        changed = False
        for candidate in _reductions(node):
            try:
                candidate_sql = to_sql(candidate)
            except Exception:  # noqa: BLE001
                continue
            if still_fails(candidate_sql):
                node = candidate
                changed = True
                break
    return to_sql(node)


def _write_artifact(seed: int, index: int, sql: str, shrunk: str, reason: str) -> Path:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"failure_seed{seed}_q{index}.sql"
    path.write_text(
        "-- differential harness failure\n"
        f"-- seed: {seed}  query index: {index}\n"
        f"-- reason: {reason}\n"
        f"-- original:\n{sql};\n"
        f"-- shrunk:\n{shrunk};\n"
    )
    return path


# --------------------------------------------------------------------------- #
# The tests
# --------------------------------------------------------------------------- #


def test_fixture_tables_agree(oracle_pair):
    """Sanity: both substrates hold identical data before fuzzing."""
    catalog, connection = oracle_pair
    for name, columns in TABLES.items():
        sql = f"SELECT {', '.join(columns)} FROM {name}"
        engine_rows = normalize_rows(run_engine(catalog, sql, optimize=True))
        sqlite_rows = normalize_rows(run_sqlite(connection, sql))
        assert engine_rows == sqlite_rows, f"fixture table {name} differs"


def test_generated_queries_differential(oracle_pair):
    catalog, connection = oracle_pair
    generator = QueryGenerator(SEED)
    failures: list[str] = []
    for index in range(QUERY_COUNT):
        sql = generator.generate()
        reason = check_query(catalog, connection, sql)
        if reason is None:
            continue
        category = failure_category(reason)
        shrunk = shrink_query(
            sql,
            lambda candidate: failure_category(check_query(catalog, connection, candidate))
            == category,
        )
        shrunk_reason = check_query(catalog, connection, shrunk) or reason
        path = _write_artifact(SEED, index, sql, shrunk, shrunk_reason)
        failures.append(
            f"query #{index} (seed {SEED}):\n  shrunk: {shrunk}\n"
            f"  reason: {shrunk_reason}\n  corpus: {path}"
        )
        if len(failures) >= 5:
            break
    assert not failures, (
        f"{len(failures)} differential failure(s):\n" + "\n".join(failures)
    )


def test_generated_queries_differential_indexed(oracle_pair, indexed_catalog):
    """Index-biased fuzzing: indexed catalog (optimizer on AND off) vs the
    plain catalog vs sqlite, all bag-equal.

    Four-way check per query: the optimizer-on run over the indexed catalog
    exercises IndexScan plans, the optimizer-off run proves the escape hatch
    ignores indexes, and the plain catalog + sqlite pin down ground truth.
    """
    plain_catalog, connection = oracle_pair
    generator = QueryGenerator(SEED ^ 0x1D38, index_bias=0.45)
    failures: list[str] = []
    for index in range(QUERY_COUNT):
        sql = generator.generate()
        runs = {}
        try:
            runs["indexed-on"] = normalize_rows(run_engine(indexed_catalog, sql, optimize=True))
            runs["indexed-off"] = normalize_rows(run_engine(indexed_catalog, sql, optimize=False))
            runs["plain"] = normalize_rows(run_engine(plain_catalog, sql, optimize=True))
            runs["sqlite"] = normalize_rows(run_sqlite(connection, sql))
        except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
            failures.append(f"query #{index}: {sql}\n  raised {type(exc).__name__}: {exc}")
        else:
            baseline = runs["sqlite"]
            for label, rows in runs.items():
                if rows != baseline:
                    failures.append(
                        f"query #{index}: {sql}\n  {label} disagrees with sqlite: "
                        f"{_preview(rows)} vs {_preview(baseline)}"
                    )
                    break
        if len(failures) >= 5:
            break
    assert not failures, (
        f"{len(failures)} indexed differential failure(s):\n" + "\n".join(failures)
    )


def test_generated_queries_differential_windows(oracle_pair):
    """Window-biased fuzzing: OVER clauses vs sqlite, optimizer on and off.

    Every window query runs three ways (engine optimized, engine verbatim,
    sqlite) and must be bag-equal — gating the window compile path, the
    shared-spec sort, frame evaluation, and the window-boundary pushdown
    legality rules from day one.  Order-sensitive shapes embed a unique key
    in the OVER's ORDER BY so results are deterministic on both substrates.
    """
    catalog, connection = oracle_pair
    generator = QueryGenerator(SEED ^ 0x57D0, window_bias=0.7)
    failures: list[str] = []
    for index in range(QUERY_COUNT):
        sql = generator.generate()
        reason = check_query(catalog, connection, sql)
        if reason is None:
            continue
        category = failure_category(reason)
        shrunk = shrink_query(
            sql,
            lambda candidate: failure_category(check_query(catalog, connection, candidate))
            == category,
        )
        shrunk_reason = check_query(catalog, connection, shrunk) or reason
        path = _write_artifact(SEED, index, sql, shrunk, shrunk_reason)
        failures.append(
            f"window query #{index} (seed {SEED}):\n  shrunk: {shrunk}\n"
            f"  reason: {shrunk_reason}\n  corpus: {path}"
        )
        if len(failures) >= 5:
            break
    assert not failures, (
        f"{len(failures)} window differential failure(s):\n" + "\n".join(failures)
    )


def test_known_hard_window_queries_differential(oracle_pair):
    """Hand-picked window shapes pinning the semantics corners to sqlite."""
    catalog, connection = oracle_pair
    queries = [
        # Default frame with ORDER BY: peers share the running value.
        "SELECT id, sum(val) OVER (ORDER BY grp, id) AS r FROM t",
        "SELECT id, sum(val) OVER (ORDER BY val) AS r FROM t",
        # No ORDER BY: the whole partition is the frame.
        "SELECT id, count(val) OVER (PARTITION BY grp) AS n FROM t",
        "SELECT id, sum(val) OVER () AS total FROM t",
        # NULL order keys must sort exactly as sqlite sorts them.
        "SELECT id, rank() OVER (ORDER BY val) AS r FROM t",
        "SELECT id, dense_rank() OVER (ORDER BY score DESC) AS r FROM t",
        "SELECT id, row_number() OVER (PARTITION BY tag ORDER BY val, id) AS r FROM t",
        # lag/lead beyond partition bounds: NULL and explicit-default fill.
        "SELECT id, lag(val, 2) OVER (PARTITION BY grp ORDER BY id) AS p FROM t",
        "SELECT id, lead(val, 3, -1) OVER (PARTITION BY grp ORDER BY id) AS p FROM t",
        "SELECT id, lag(val, 0) OVER (ORDER BY id) AS p FROM t",
        # Physical frames, including shrinking and empty frames.
        "SELECT id, avg(val) OVER (ORDER BY id ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS m FROM t",
        "SELECT id, max(val) OVER (ORDER BY id ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS m FROM t",
        "SELECT id, min(val) OVER (PARTITION BY grp ORDER BY id "
        "ROWS BETWEEN UNBOUNDED PRECEDING AND 1 FOLLOWING) AS m FROM t",
        # Two windows sharing one spec (single sort) plus a distinct spec.
        "SELECT id, row_number() OVER (PARTITION BY grp ORDER BY val, id) AS r, "
        "sum(val) OVER (PARTITION BY grp ORDER BY val, id) AS s, "
        "count(*) OVER (PARTITION BY tag) AS n FROM t",
        # Window over GROUP BY aggregates.
        "SELECT grp, count(*) AS n, rank() OVER (ORDER BY count(*) DESC, grp) AS pos "
        "FROM t GROUP BY grp",
        # Window inside a derived table with boundary-crossing predicates.
        "SELECT d.k, d.r FROM (SELECT id AS k, grp AS g, "
        "row_number() OVER (PARTITION BY grp ORDER BY val, id) AS r FROM t) d "
        "WHERE d.r <= 3 AND d.g = 'a'",
        # Window referenced by the query-level ORDER BY.
        "SELECT id, rank() OVER (ORDER BY val, id) AS r FROM t ORDER BY r, id",
    ]
    failures = []
    for sql in queries:
        reason = check_query(catalog, connection, sql)
        if reason is not None:
            failures.append(f"{sql}\n  -> {reason}")
    assert not failures, "hard window-query differential failures:\n" + "\n\n".join(failures)


def test_known_hard_queries_differential(oracle_pair):
    """Hand-picked shapes that exercise every rewrite rule's legality edge."""
    catalog, connection = oracle_pair
    queries = [
        # Cross join rescued by WHERE equality (pushdown + join conversion).
        "SELECT t0.id, s0.amount FROM t t0, s s0 WHERE s0.t_id = t0.id AND t0.val > 50",
        # Three-way comma join (reorder + pruning + hash joins).
        "SELECT t0.grp, u0.label FROM t t0, s s0, u u0 "
        "WHERE s0.t_id = t0.id AND u0.k = s0.t_id AND s0.amount > 100",
        # LEFT join: right-side WHERE predicate must NOT be pushed below.
        "SELECT t0.id, s0.amount FROM t t0 LEFT JOIN s s0 ON s0.t_id = t0.id "
        "WHERE s0.amount > 200",
        # LEFT join: right-side ON predicate must be pushed (matching only).
        "SELECT t0.id, s0.amount FROM t t0 LEFT JOIN s s0 "
        "ON s0.t_id = t0.id AND s0.amount > 200 WHERE t0.val IS NOT NULL",
        # HAVING split: group-key conjunct pushable, aggregate conjunct not.
        "SELECT grp, count(*) AS n FROM t GROUP BY grp "
        "HAVING grp IS NOT NULL AND count(*) > 5",
        # Derived-table pushdown through projection renames.
        "SELECT d.a FROM (SELECT id AS a, val AS v FROM t) d WHERE d.v > 60",
        # Derived aggregate: outer filter on aggregate output stays outside.
        "SELECT d.g FROM (SELECT grp AS g, count(*) AS n FROM t GROUP BY grp) d "
        "WHERE d.n > 8",
        # Correlated subquery in WHERE under the optimizer.
        "SELECT t0.id FROM t t0 WHERE EXISTS "
        "(SELECT 1 FROM s sx WHERE sx.t_id = t0.id AND sx.amount > 250)",
        # NULL-heavy anti-join flavoured filter.
        "SELECT t0.id FROM t t0 WHERE NOT EXISTS "
        "(SELECT 1 FROM s sx WHERE sx.t_id = t0.id)",
        # IN subquery with NULLs on both sides.
        "SELECT t0.id FROM t t0 WHERE t0.val IN (SELECT u0.num FROM u u0)",
        # Set operations with NULL rows.
        "SELECT grp FROM t INTERSECT SELECT cat FROM s",
        "SELECT grp FROM t EXCEPT SELECT cat FROM s",
        "SELECT grp FROM t UNION SELECT cat FROM s",
        # CTE + join + aggregate over the CTE.
        "WITH w AS (SELECT grp AS g, count(*) AS n FROM t GROUP BY grp) "
        "SELECT t.id, w.n FROM t JOIN w ON w.g = t.grp WHERE w.n > 5",
        # Constant folding and trivial predicate elimination.
        "SELECT id FROM t WHERE 1 + 1 = 2 AND val > 10 + 20",
        "SELECT id FROM t WHERE 1 = 2 AND val > 0",
        # OR chains are never split.
        "SELECT id FROM t WHERE val > 90 OR grp = 'a' OR tag IS NULL",
    ]
    failures = []
    for sql in queries:
        reason = check_query(catalog, connection, sql)
        if reason is not None:
            failures.append(f"{sql}\n  -> {reason}")
    assert not failures, "hard-query differential failures:\n" + "\n\n".join(failures)
