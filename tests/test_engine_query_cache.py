"""Unit tests for the canonical-query result cache and its catalog wiring."""

from __future__ import annotations

import pytest

from repro.engine.catalog import Catalog
from repro.engine.query_cache import QueryCache, cache_key
from repro.engine.table import QueryResult
from repro.sql.parser import parse
from repro.sql.schema import ResultSchema


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "sales",
        ["region", "product", "amount"],
        [["east", "apple", 100], ["west", "banana", 50], ["east", "cherry", 75]],
    )
    return cat


class TestCacheKey:
    def test_canonical_variants_share_a_key(self, catalog):
        version = catalog.data_version()
        plain = cache_key(parse("SELECT region FROM sales WHERE amount > 10"), version)
        qualified = cache_key(
            parse("SELECT sales.region FROM sales WHERE sales.amount > 10"), version
        )
        aliased = cache_key(
            parse("SELECT s.region FROM sales s WHERE s.amount > 10"), version
        )
        assert plain == qualified == aliased

    def test_and_chain_shape_is_normalized(self, catalog):
        version = catalog.data_version()
        left_deep = cache_key(
            parse("SELECT region FROM sales WHERE (amount > 10 AND amount < 90) AND region = 'east'"),
            version,
        )
        right_deep = cache_key(
            parse("SELECT region FROM sales WHERE amount > 10 AND (amount < 90 AND region = 'east')"),
            version,
        )
        assert left_deep == right_deep

    def test_different_versions_produce_different_keys(self, catalog):
        node = parse("SELECT region FROM sales")
        before = cache_key(node, catalog.data_version())
        catalog.table("sales").append(["north", "date", 10])
        after = cache_key(node, catalog.data_version())
        assert before != after

    def test_parameterized_queries_are_uncacheable(self, catalog):
        node = parse("SELECT region FROM sales WHERE amount > :threshold")
        assert cache_key(node, catalog.data_version()) is None

    def test_correlated_subquery_variants_do_not_alias(self, catalog):
        # Stripping the outer alias inside the subquery would turn the
        # correlated reference into an inner-scope one — a different query.
        cat = Catalog()
        cat.create_table("t", ["id", "k"], [[1, "a"], [2, "b"]])
        cat.create_table("s", ["k", "other"], [["a", 1]])
        correlated = cat.execute(
            "SELECT id FROM t c WHERE EXISTS (SELECT 1 FROM s WHERE s.k = c.k)"
        )
        inner_scope = cat.execute(
            "SELECT id FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.k = k)"
        )
        assert correlated.rows == [(1,)]
        assert inner_scope.rows == [(1,), (2,)]
        assert cat.cache_stats()["entries"] == 2


class TestCatalogCacheBehavior:
    def test_hit_on_repeat_and_on_canonical_variant(self, catalog):
        first = catalog.execute("SELECT region FROM sales WHERE amount > 60")
        variant = catalog.execute("SELECT sales.region FROM sales WHERE sales.amount > 60")
        assert variant.rows == first.rows
        stats = catalog.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_miss_after_row_mutation(self, catalog):
        catalog.execute("SELECT count(*) FROM sales")
        catalog.table("sales").append(["north", "date", 10])
        result = catalog.execute("SELECT count(*) FROM sales")
        assert result.rows == [(4,)]
        assert catalog.cache_stats()["hits"] == 0

    def test_miss_after_table_replacement(self, catalog):
        catalog.execute("SELECT count(*) FROM sales")
        catalog.create_table("sales", ["region"], [["only"]], replace=True)
        result = catalog.execute("SELECT count(*) FROM sales")
        assert result.rows == [(1,)]
        assert catalog.cache_stats()["hits"] == 0

    def test_miss_after_register_of_unrelated_table(self, catalog):
        # Registering any table changes the catalog version: conservative but
        # always correct (new tables can shadow CTE-free name resolution).
        catalog.execute("SELECT count(*) FROM sales")
        catalog.create_table("other", ["x"], [[1]])
        catalog.execute("SELECT count(*) FROM sales")
        assert catalog.cache_stats()["hits"] == 0

    def test_use_cache_false_bypasses_lookup_and_store(self, catalog):
        catalog.execute("SELECT region FROM sales", use_cache=False)
        catalog.execute("SELECT region FROM sales", use_cache=False)
        stats = catalog.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["entries"] == 0

    def test_cached_result_is_isolated_from_caller_mutation(self, catalog):
        first = catalog.execute("SELECT region FROM sales")
        first.rows.clear()
        first.columns.append("junk")
        second = catalog.execute("SELECT region FROM sales")
        assert second.columns == ["region"]
        assert len(second.rows) == 3

    def test_identical_results_across_cold_and_cached_paths(self, catalog):
        sql = "SELECT region, sum(amount) AS total FROM sales GROUP BY region ORDER BY total DESC"
        cold = catalog.execute(sql, use_cache=False)
        warm_store = catalog.execute(sql)
        warm_hit = catalog.execute(sql)
        assert cold.rows == warm_store.rows == warm_hit.rows
        assert cold.columns == warm_hit.columns
        assert [c.name for c in warm_hit.schema.columns] == cold.columns

    def test_clear_caches(self, catalog):
        catalog.execute("SELECT region FROM sales")
        catalog.clear_caches()
        stats = catalog.cache_stats()
        assert stats["entries"] == 0 and stats["plan_cache_entries"] == 0

    def test_stats_exposed_via_catalog(self, catalog):
        stats = catalog.cache_stats()
        for key in ("hits", "misses", "hit_rate", "entries", "capacity", "plan_cache_entries"):
            assert key in stats


class TestQueryCacheUnit:
    @staticmethod
    def _result(rows) -> QueryResult:
        return QueryResult(columns=["a"], rows=rows, schema=ResultSchema(columns=()))

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.store("k1", self._result([(1,)]))
        cache.store("k2", self._result([(2,)]))
        assert cache.lookup("k1") is not None  # k1 becomes most recent
        cache.store("k3", self._result([(3,)]))  # evicts k2
        assert cache.lookup("k2") is None
        assert cache.lookup("k1") is not None
        assert cache.lookup("k3") is not None
        assert cache.stats.evictions == 1

    def test_store_copies_input(self):
        cache = QueryCache()
        result = self._result([(1,)])
        cache.store("k", result)
        result.rows.append((2,))
        assert cache.lookup("k").rows == [(1,)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)

    def test_hit_rate_with_no_traffic(self):
        assert QueryCache().stats.hit_rate == 0.0

    def test_clear_resets_counters_and_counts_the_clear(self):
        # Regression: clear() used to drop the entries but leave every
        # counter, so hit_rate kept describing a population that no longer
        # existed.
        cache = QueryCache(capacity=1)
        cache.store("k1", self._result([(1,)]))
        cache.store("k2", self._result([(2,)]))  # evicts k1
        cache.lookup("k2")
        cache.lookup("gone")
        cache.note_bypass()
        cache.note_fold()
        cache.note_fallback()
        cache.clear()
        stats = cache.snapshot()
        for counter in ("hits", "misses", "stores", "evictions", "bypassed",
                        "ivm_folds", "ivm_fallbacks"):
            assert stats[counter] == 0, counter
        assert stats["cleared"] == 1
        assert stats["hit_rate"] == 0.0 and stats["effective_hit_rate"] == 0.0
        assert stats["entries"] == 0 and stats["folders"] == 0
        cache.clear()
        assert cache.stats.cleared == 2  # cumulative across clears

    def test_clear_drops_folders(self):
        cache = QueryCache()
        cache.store_folder("SELECT 1", object())
        cache.clear()
        assert cache.folder("SELECT 1") is None

    def test_effective_hit_rate_counts_folds_as_hits(self):
        cache = QueryCache()
        cache.lookup("miss-1")
        cache.lookup("miss-2")
        cache.note_fold()
        assert cache.stats.hit_rate == 0.0
        assert cache.stats.effective_hit_rate == pytest.approx(0.5)


class TestTableStatisticsMemoization:
    def test_distinct_count_memoized_and_invalidated(self, catalog):
        table = catalog.table("sales")
        assert table.distinct_count("region") == 2
        version = table.data_version
        assert table.distinct_count("region") == 2
        assert table.data_version == version
        table.append(["north", "date", 10])
        assert table.data_version != version
        assert table.distinct_count("region") == 3

    def test_distinct_values_returns_a_fresh_list(self, catalog):
        table = catalog.table("sales")
        values = table.distinct_values("region")
        values.append("junk")
        assert table.distinct_values("region") == ["east", "west"]

    def test_column_returns_a_copy_so_mutation_cannot_poison_caches(self, catalog):
        catalog.execute("SELECT region FROM sales")
        catalog.table("sales").column("region")[0] = "junk"
        assert catalog.execute("SELECT region FROM sales").rows[0] == ("east",)
        assert catalog.table("sales").column_data("region")[0] == "east"

    def test_schema_memo_tracks_data_version(self, catalog):
        table = catalog.table("sales")
        schema_a = table.schema()
        assert table.schema() is schema_a
        table.append(["north", "date", 10])
        assert table.schema() is not schema_a


class TestOptimizerCacheAgreement:
    """The result cache and the optimizer must agree (regression tests).

    The canonical cache key is computed from the *AST*, before planning, so
    optimization can never change which entry a query maps to; and cached
    entries always correspond to the default (optimized) compile path because
    ``optimize=False`` executions bypass the cache entirely.
    """

    def test_unoptimized_execution_bypasses_result_cache(self, catalog):
        sql = "SELECT region FROM sales WHERE amount > 60"
        cached = catalog.execute(sql)  # stored by the optimized path
        before = catalog.cache_stats()
        raw = catalog.execute(sql, optimize=False)
        after = catalog.cache_stats()
        assert raw.rows == cached.rows
        assert after["bypassed"] == before["bypassed"] + 1
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_result_cached_preoptimization_is_not_served_a_stale_shape(self, catalog):
        # A result stored via the optimized compile path must be invalidated
        # by data changes exactly like before: the key includes the data
        # version, so the rewritten plan shape never leaks into staleness.
        sql = "SELECT region FROM sales WHERE amount > 60"
        first = catalog.execute(sql)
        catalog.table("sales").append(["south", "kiwi", 99])
        second = catalog.execute(sql)
        assert ("south",) in second.rows and ("south",) not in first.rows
        unoptimized = catalog.execute(sql, use_cache=False, optimize=False)
        assert sorted(second.rows) == sorted(unoptimized.rows)

    def test_hit_rate_survives_the_optimizing_compile_step(self, catalog):
        sql = "SELECT s.region FROM sales s WHERE s.amount > 60"
        catalog.execute(sql)
        repeat = catalog.execute(sql)
        variant = catalog.execute("SELECT region FROM sales WHERE amount > 60")
        stats = catalog.cache_stats()
        assert stats["hits"] >= 2  # repeat + canonical variant both hit
        assert stats["hit_rate"] > 0
        assert repeat.rows == variant.rows

    def test_plan_cache_keys_optimized_and_verbatim_plans_separately(self, catalog):
        sql = "SELECT product FROM sales WHERE amount > 60"
        catalog.execute(sql, use_cache=False)
        optimized_entries = catalog.cache_stats()["plan_cache_entries"]
        catalog.execute(sql, use_cache=False, optimize=False)
        both_entries = catalog.cache_stats()["plan_cache_entries"]
        assert both_entries == optimized_entries + 1
        # Re-running either mode reuses its own compiled plan.
        catalog.execute(sql, use_cache=False)
        catalog.execute(sql, use_cache=False, optimize=False)
        assert catalog.cache_stats()["plan_cache_entries"] == both_entries
        flags = {key[2] for key in catalog._plan_cache}
        assert flags == {True, False}

    def test_optimized_and_verbatim_results_agree_for_cached_queries(self, catalog):
        sql = (
            "SELECT s.region, s.amount FROM sales s "
            "WHERE s.amount > 40 AND s.region <> 'north'"
        )
        cached_twice = [catalog.execute(sql).rows, catalog.execute(sql).rows]
        verbatim = catalog.execute(sql, use_cache=False, optimize=False).rows
        assert cached_twice[0] == cached_twice[1]
        assert sorted(cached_twice[0]) == sorted(verbatim)
