"""Per-rule unit tests and plan snapshots for the logical optimizer.

Each rewrite rule (constant folding, predicate pushdown, join reordering,
projection pruning) is tested in isolation through ``optimize_plan`` and its
trace, plus snapshot tests of the shapes ``Catalog.explain(physical=True)``
renders.  The legality edges — outer joins, OR chains, subquery-bearing
conjuncts, mixed-type columns that rely on the row-wise AND/OR/CASE fallback,
correlated subqueries — each have a test asserting the rule stays its hand
and the results match the unoptimized path.
"""

from __future__ import annotations

import pytest

from repro.engine.catalog import Catalog
from repro.engine.optimizer import optimize_plan
from repro.engine.planner import Planner
from repro.sql.parser import parse


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "sales",
        ["region", "product", "amount", "quantity"],
        [
            ["east", "apple", 100, 10],
            ["west", "banana", 50, 5],
            ["east", "pear", 70, 7],
            ["north", "fig", 20, 2],
        ],
    )
    cat.create_table(
        "regions", ["region", "manager"], [["east", "alice"], ["west", "bob"]]
    )
    cat.create_table(
        "products",
        ["product", "category"],
        [["apple", "fruit"], ["banana", "fruit"], ["pear", "fruit"], ["fig", "fruit"]],
    )
    return cat


def rewrite(catalog: Catalog, sql: str):
    logical = Planner().plan(parse(sql))
    return optimize_plan(logical, catalog)


def section(text: str, header: str) -> str:
    """One section of the explain(physical=True) output."""
    body = text.split(f"== {header} ==\n", 1)[1]
    return body.split("\n== ", 1)[0]


# --------------------------------------------------------------------------- #
# Rule: constant folding
# --------------------------------------------------------------------------- #


class TestConstantFolding:
    def test_constant_comparison_folds_and_trivial_filter_is_dropped(self, catalog):
        optimized, trace = rewrite(catalog, "SELECT region FROM sales WHERE 1 + 1 = 2")
        assert "Filter" not in optimized.pretty()
        assert any(rule == "constant_folding" for rule, _ in trace.events)

    def test_constant_subexpression_folds_inside_predicate(self, catalog):
        optimized, _ = rewrite(
            catalog, "SELECT region FROM sales WHERE amount > 10 + 20"
        )
        assert "Filter[where](amount > 30)" in optimized.pretty()

    def test_true_operand_absorbed_from_and_chain(self, catalog):
        optimized, _ = rewrite(
            catalog, "SELECT region FROM sales WHERE 2 > 1 AND amount > 10"
        )
        assert "Filter[where](amount > 10)" in optimized.pretty()

    def test_false_constant_collapses_conjunction(self, catalog):
        optimized, _ = rewrite(
            catalog, "SELECT region FROM sales WHERE 1 = 2 AND amount > 10"
        )
        assert "Filter[where](FALSE)" in optimized.pretty()

    def test_folding_and_execution_agree(self, catalog):
        sql = "SELECT region FROM sales WHERE 1 = 2 AND amount > 10"
        assert catalog.execute(sql, use_cache=False).rows == []
        sql = "SELECT region FROM sales WHERE abs(-2) = 2 AND amount >= 100"
        on = catalog.execute(sql, use_cache=False).rows
        off = catalog.execute(sql, use_cache=False, optimize=False).rows
        assert on == off == [("east",)]

    def test_erroring_constant_is_left_alone(self, catalog):
        # sqrt(-1) raises; folding must skip it, not hide or hoist the error.
        optimized, _ = rewrite(
            catalog, "SELECT region FROM sales WHERE amount > 10 AND sqrt(-1) = 1"
        )
        assert "sqrt(-1)" in optimized.pretty()


# --------------------------------------------------------------------------- #
# Rule: predicate pushdown
# --------------------------------------------------------------------------- #


class TestPredicatePushdown:
    def test_single_side_where_conjunct_pushes_below_inner_join(self, catalog):
        optimized, trace = rewrite(
            catalog,
            "SELECT s.product FROM sales s JOIN regions r ON s.region = r.region "
            "WHERE s.amount > 60 AND r.manager = 'alice'",
        )
        text = optimized.pretty()
        assert text == (
            "Project(s.product)\n"
            "  Join(INNER, on=s.region = r.region)\n"
            "    Filter[where](s.amount > 60)\n"
            "      Scan(sales AS s, cols=[region, product, amount])\n"
            "    Filter[where](r.manager = 'alice')\n"
            "      Scan(regions AS r)"
        )
        assert "predicate_pushdown" in trace.rules_applied()

    def test_on_conjunct_referencing_one_side_pushes_below_inner_join(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT s.product FROM sales s JOIN regions r "
            "ON s.region = r.region AND s.amount > 60",
        )
        text = optimized.pretty()
        assert "Join(INNER, on=s.region = r.region)" in text
        assert "Filter[where](s.amount > 60)\n      Scan(sales AS s" in text

    def test_where_equality_merges_into_cross_join_condition(self, catalog):
        optimized, trace = rewrite(
            catalog,
            "SELECT s.product FROM sales s, regions r WHERE s.region = r.region",
        )
        assert "Join(INNER, on=s.region = r.region)" in optimized.pretty()
        assert any("merged" in detail for _, detail in trace.events)

    def test_comma_join_compiles_to_hash_join(self, catalog):
        plan = catalog.explain(
            "SELECT s.product FROM sales s, regions r WHERE s.region = r.region",
            physical=True,
        )
        assert "HashJoin(INNER, keys=[s.region = r.region])" in section(
            plan, "Physical plan"
        )

    def test_left_join_keeps_null_padding_filter_above(self, catalog):
        # A WHERE predicate on the NULL-padded side would change semantics if
        # pushed below the join: it must stay above.
        optimized, _ = rewrite(
            catalog,
            "SELECT s.product FROM sales s LEFT JOIN regions r ON s.region = r.region "
            "WHERE r.manager = 'alice'",
        )
        text = optimized.pretty()
        assert text.startswith(
            "Project(s.product)\n"
            "  Filter[where](r.manager = 'alice')\n"
            "    Join(LEFT, on=s.region = r.region)"
        )

    def test_left_join_pushes_preserved_side_where_conjunct(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT s.product FROM sales s LEFT JOIN regions r ON s.region = r.region "
            "WHERE s.amount > 60",
        )
        assert "Filter[where](s.amount > 60)\n      Scan(sales AS s" in optimized.pretty()

    def test_left_join_pushes_inner_side_on_conjunct(self, catalog):
        # ON conditions only control matching; filtering the non-preserved
        # input before the join is equivalent and cheaper.
        optimized, _ = rewrite(
            catalog,
            "SELECT s.product FROM sales s LEFT JOIN regions r "
            "ON s.region = r.region AND r.manager = 'alice'",
        )
        text = optimized.pretty()
        assert "Join(LEFT, on=s.region = r.region)" in text
        assert "Filter[where](r.manager = 'alice')\n      Scan(regions AS r)" in text

    def test_or_chains_are_never_split(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT s.product FROM sales s JOIN regions r ON s.region = r.region "
            "WHERE s.amount > 60 OR r.manager = 'alice'",
        )
        # The OR conjunct may move as one unit (here: merged whole into the
        # inner-join condition) but its disjuncts must never be separated.
        text = optimized.pretty()
        assert "(s.amount > 60 OR r.manager = 'alice')" in text
        assert "Filter[where](s.amount > 60)" not in text
        assert "Filter[where](r.manager = 'alice')" not in text

    def test_subquery_conjunct_is_not_moved(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT s.product FROM sales s JOIN regions r ON s.region = r.region "
            "WHERE s.amount > (SELECT avg(amount) FROM sales)",
        )
        text = optimized.pretty()
        # The subquery conjunct stays above the join (never pushed below).
        assert text.index("SELECT avg(amount)") < text.index("Join(")

    def test_having_group_key_conjunct_pushes_below_aggregation(self, catalog):
        optimized, trace = rewrite(
            catalog,
            "SELECT region, count(*) AS n FROM sales GROUP BY region "
            "HAVING region <> 'west' AND count(*) > 0",
        )
        assert optimized.pretty() == (
            "Project(region, count(*) AS n)\n"
            "  Filter[having](count(*) > 0)\n"
            "    Aggregate(group_by=[region], aggregates=[count(*)])\n"
            "      Filter[where](region <> 'west')\n"
            "        Scan(sales, cols=[region])"
        )
        assert any("HAVING" in detail for _, detail in trace.events)

    def test_derived_table_pushdown_substitutes_projected_expressions(self, catalog):
        optimized, trace = rewrite(
            catalog,
            "SELECT d.p FROM (SELECT product AS p, amount * 2 AS double_amount "
            "FROM sales) d WHERE d.double_amount > 150",
        )
        text = optimized.pretty()
        assert "Filter[where](amount * 2 > 150)" in text
        assert any("derived table" in detail for _, detail in trace.events)

    def test_derived_aggregate_output_filter_stays_outside_aggregation(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT d.g FROM (SELECT region AS g, count(*) AS n FROM sales "
            "GROUP BY region) d WHERE d.n > 1",
        )
        text = optimized.pretty()
        # The aggregate-output conjunct is rejected by the derived-table rule
        # (aggregates are never movable): it stays above the derived scan and
        # must not slip below the Aggregate operator in any substituted form.
        assert "Filter[where](d.n > 1)" in text
        assert text.index("Filter[where](d.n > 1)") < text.index("Aggregate(")

    def test_pushdown_results_match_unoptimized(self, catalog):
        queries = [
            "SELECT s.product FROM sales s JOIN regions r ON s.region = r.region "
            "WHERE s.amount > 60 AND r.manager = 'alice'",
            "SELECT s.product FROM sales s LEFT JOIN regions r ON s.region = r.region "
            "WHERE r.manager = 'alice'",
            "SELECT s.product, r.manager FROM sales s, regions r "
            "WHERE s.region = r.region AND s.amount >= 50",
        ]
        for sql in queries:
            on = catalog.execute(sql, use_cache=False).rows
            off = catalog.execute(sql, use_cache=False, optimize=False).rows
            assert sorted(on) == sorted(off), sql


# --------------------------------------------------------------------------- #
# Rule: join reordering
# --------------------------------------------------------------------------- #


class TestJoinReorder:
    @pytest.fixture()
    def sized_catalog(self) -> Catalog:
        cat = Catalog()
        cat.create_table(
            "big", ["k", "payload"], [[i % 20, f"p{i}"] for i in range(100)]
        )
        cat.create_table("mid", ["k", "j"], [[i % 20, i % 6] for i in range(30)])
        cat.create_table("small", ["j", "tag"], [[i, f"t{i}"] for i in range(5)])
        return cat

    def test_greedy_reorder_starts_from_smallest_input(self, sized_catalog):
        optimized, trace = rewrite(
            sized_catalog,
            "SELECT b.payload FROM big b, mid m, small s "
            "WHERE b.k = m.k AND m.j = s.j",
        )
        reorder = [detail for rule, detail in trace.events if rule == "join_reorder"]
        assert reorder and "-> [s, m, b]" in reorder[0]
        text = optimized.pretty()
        assert text.index("Scan(small AS s") < text.index("Scan(mid AS m")
        assert text.index("Scan(mid AS m") < text.index("Scan(big AS b")

    def test_two_way_joins_keep_their_order(self, sized_catalog):
        _, trace = rewrite(
            sized_catalog, "SELECT b.payload FROM big b JOIN mid m ON b.k = m.k"
        )
        assert "join_reorder" not in trace.rules_applied()

    def test_select_star_scope_is_never_reordered(self, sized_catalog):
        _, trace = rewrite(
            sized_catalog,
            "SELECT * FROM big b, mid m, small s WHERE b.k = m.k AND m.j = s.j",
        )
        assert "join_reorder" not in trace.rules_applied()

    def test_outer_join_region_boundary_is_respected(self, sized_catalog):
        optimized, trace = rewrite(
            sized_catalog,
            "SELECT b.payload FROM big b LEFT JOIN mid m ON b.k = m.k "
            "LEFT JOIN small s ON s.j = m.j",
        )
        assert "join_reorder" not in trace.rules_applied()
        text = optimized.pretty()
        assert text.index("Scan(big AS b") < text.index("Scan(mid AS m")

    def test_reordered_results_are_bag_equal(self, sized_catalog):
        sql = (
            "SELECT b.payload, s.tag FROM big b, mid m, small s "
            "WHERE b.k = m.k AND m.j = s.j"
        )
        on = sized_catalog.execute(sql, use_cache=False).rows
        off = sized_catalog.execute(sql, use_cache=False, optimize=False).rows
        assert sorted(on) == sorted(off)
        assert len(on) > 0


# --------------------------------------------------------------------------- #
# Rule: projection pruning
# --------------------------------------------------------------------------- #


class TestProjectionPruning:
    def test_scan_narrowed_to_referenced_columns(self, catalog):
        optimized, trace = rewrite(
            catalog, "SELECT product FROM sales WHERE amount > 60"
        )
        assert "cols=[product, amount]" in optimized.pretty()
        assert "projection_pruning" in trace.rules_applied()

    def test_select_star_disables_pruning_everywhere(self, catalog):
        optimized, trace = rewrite(catalog, "SELECT * FROM sales WHERE amount > 60")
        assert "cols=" not in optimized.pretty()
        assert "projection_pruning" not in trace.rules_applied()

    def test_qualified_star_keeps_that_scan_wide(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT s.* FROM sales s JOIN regions r ON s.region = r.region "
            "WHERE r.manager = 'alice'",
        )
        text = optimized.pretty()
        assert "Scan(sales AS s)" in text  # full width
        assert "Scan(regions AS r, cols=[region, manager])" in text or (
            "Scan(regions AS r)" in text
        )

    def test_count_star_does_not_demand_any_column(self, catalog):
        optimized, _ = rewrite(catalog, "SELECT count(*) FROM sales")
        assert "Scan(sales, cols=[])" in optimized.pretty()
        result = catalog.execute("SELECT count(*) FROM sales", use_cache=False)
        assert result.rows == [(4,)]

    def test_correlated_subquery_columns_survive_pruning(self, catalog):
        sql = (
            "SELECT s.product FROM sales s WHERE EXISTS "
            "(SELECT 1 FROM regions r WHERE r.region = s.region)"
        )
        optimized, _ = rewrite(catalog, sql)
        # s.region is referenced only inside the correlated subquery; the scan
        # must still materialize it.
        assert "Scan(sales AS s, cols=[region, product])" in optimized.pretty()
        on = catalog.execute(sql, use_cache=False).rows
        off = catalog.execute(sql, use_cache=False, optimize=False).rows
        assert sorted(on) == sorted(off)

    def test_cte_scans_are_not_pruned(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "WITH t AS (SELECT region, amount FROM sales) "
            "SELECT region FROM t WHERE amount > 60",
        )
        text = optimized.pretty()
        assert "Scan(t, cols=" not in text
        assert "Scan(sales" in text


# --------------------------------------------------------------------------- #
# Short-circuit fallback paths under the optimizer
# --------------------------------------------------------------------------- #


class TestShortCircuitLegality:
    @pytest.fixture()
    def mixed_catalog(self) -> Catalog:
        # 'val' mixes integers and strings; comparing it to a number raises
        # unless a guard filters the string rows first.  The engine handles
        # this via the row-wise AND/OR/CASE fallback; the optimizer must not
        # move the unguarded comparison anywhere it would be evaluated alone
        # over unguarded rows.
        cat = Catalog()
        cat.create_table(
            "mix",
            ["id", "kind", "val"],
            [
                [1, "num", 15],
                [2, "num", 5],
                [3, "word", "abc"],
                [4, "word", "def"],
            ],
        )
        cat.create_table("kinds", ["kind", "label"], [["num", "n"], ["word", "w"]])
        return cat

    def test_mixed_type_conjunct_is_not_movable(self, mixed_catalog):
        _, trace = rewrite(
            mixed_catalog,
            "SELECT m.id FROM mix m JOIN kinds k ON m.kind = k.kind "
            "WHERE m.kind = 'num' AND m.val > 10",
        )
        assert not any("m.val > 10" in detail for _, detail in trace.events)

    def test_guarded_and_chain_still_evaluates_rowwise(self, mixed_catalog):
        sql = (
            "SELECT m.id FROM mix m JOIN kinds k ON m.kind = k.kind "
            "WHERE m.kind = 'num' AND m.val > 10"
        )
        on = mixed_catalog.execute(sql, use_cache=False).rows
        off = mixed_catalog.execute(sql, use_cache=False, optimize=False).rows
        assert on == off == [(1,)]

    def test_case_guard_fallback_matches_unoptimized(self, mixed_catalog):
        sql = (
            "SELECT m.id FROM mix m JOIN kinds k ON m.kind = k.kind "
            "WHERE CASE WHEN m.kind = 'num' THEN m.val > 10 ELSE m.id > 3 END"
        )
        on = mixed_catalog.execute(sql, use_cache=False).rows
        off = mixed_catalog.execute(sql, use_cache=False, optimize=False).rows
        assert on == off == [(1,), (4,)]

    def test_or_guard_fallback_matches_unoptimized(self, mixed_catalog):
        sql = (
            "SELECT m.id FROM mix m WHERE m.kind = 'word' OR m.val > 10"
        )
        on = mixed_catalog.execute(sql, use_cache=False).rows
        off = mixed_catalog.execute(sql, use_cache=False, optimize=False).rows
        assert on == off == [(1,), (3,), (4,)]

    def test_cached_plan_is_recompiled_after_row_mutation(self):
        # Regression: an optimized plan proves totality from the *data*
        # (Table.value_type), so a compiled plan cached before a row append
        # must not be reused after the append makes the proof stale — here,
        # a column that was all-integer gains a string.
        cat = Catalog()
        cat.create_table("t", ["x", "y"], [[1, 1], [2, 2]])
        cat.create_table("u", ["k"], [[1]])
        sql = "SELECT t.x FROM t JOIN u ON t.y = u.k WHERE u.k = 99 AND t.x < 5"
        assert cat.execute(sql, use_cache=False).rows == []
        cat.table("t").append(["oops", 3])
        on = cat.execute(sql, use_cache=False).rows
        off = cat.execute(sql, use_cache=False, optimize=False).rows
        assert on == off == []

    def test_boolean_arithmetic_is_not_proven_textual(self):
        # Regression: DataType.unify(BOOLEAN, INTEGER) is TEXT, which once
        # proved (b + 1) < 'zz' "total" and pushed it below the join; the
        # verbatim path hides the type error behind the always-false guard.
        cat = Catalog()
        cat.create_table("t", ["b", "y"], [[True, 1], [False, 2]])
        cat.create_table("u", ["k"], [[1]])
        sql = "SELECT t.y FROM t JOIN u ON t.y = u.k WHERE u.k = 99 AND (t.b + 1) < 'zz'"
        on = cat.execute(sql, use_cache=False).rows
        off = cat.execute(sql, use_cache=False, optimize=False).rows
        assert on == off == []

    def test_correlated_scalar_subquery_matches_unoptimized(self, catalog):
        sql = (
            "SELECT s.product FROM sales s WHERE s.amount >= "
            "(SELECT max(s2.amount) FROM sales s2 WHERE s2.region = s.region)"
        )
        on = catalog.execute(sql, use_cache=False).rows
        off = catalog.execute(sql, use_cache=False, optimize=False).rows
        assert sorted(on) == sorted(off)
        assert ("apple",) in on


# --------------------------------------------------------------------------- #
# explain(physical=True) rendering
# --------------------------------------------------------------------------- #


class TestExplainRendering:
    def test_explain_renders_all_four_sections(self, catalog):
        text = catalog.explain(
            "SELECT product FROM sales WHERE amount > 60", physical=True
        )
        for header in (
            "== Logical plan ==",
            "== Optimizer trace ==",
            "== Optimized logical plan ==",
            "== Physical plan ==",
        ):
            assert header in text

    def test_explain_trace_names_applied_rules(self, catalog):
        text = catalog.explain(
            "SELECT s.product FROM sales s, regions r "
            "WHERE s.region = r.region AND 1 = 1",
            physical=True,
        )
        trace = section(text, "Optimizer trace")
        assert "constant_folding" in trace
        assert "predicate_pushdown" in trace
        assert "projection_pruning" in trace

    def test_explain_without_rewrites_says_so(self, catalog):
        text = catalog.explain("SELECT * FROM sales", physical=True)
        assert "(no rewrites applied)" in section(text, "Optimizer trace")

    def test_explain_optimize_false_renders_verbatim_lowering(self, catalog):
        text = catalog.explain(
            "SELECT product FROM sales WHERE amount > 60",
            physical=True,
            optimize=False,
        )
        assert "== " not in text
        assert text.startswith("Project(product)")
        assert "cols=" not in text


# --------------------------------------------------------------------------- #
# Rule: predicate pushdown at window boundaries
# --------------------------------------------------------------------------- #


class TestWindowBoundary:
    SQL = (
        "SELECT d.k, d.s FROM (SELECT region AS k, amount, "
        "sum(amount) OVER (PARTITION BY region) AS s FROM sales) d "
        "WHERE d.k = 'east' AND d.amount > 50 AND d.s > 100"
    )

    def test_partition_key_conjunct_pushes_below_window(self, catalog):
        optimized, trace = rewrite(catalog, self.SQL)
        text = optimized.pretty()
        # The partition-key filter lands below the Window, on the scan side.
        assert (
            "Window(sum(amount) OVER (PARTITION BY region))\n"
            "            Filter[where](region = 'east')" in text
        )
        assert any(
            "pushed region = 'east' below window boundary (partition keys only)" in detail
            for _, detail in trace.events
        )

    def test_non_partition_conjunct_stays_above_window(self, catalog):
        optimized, trace = rewrite(catalog, self.SQL)
        text = optimized.pretty()
        # amount is not a partition key: its filter stays above the Window.
        assert "Filter[where](amount > 50)\n          Window(" in text
        assert any(
            "kept amount > 50 above window boundary: references non-partition column(s)"
            in detail
            for _, detail in trace.events
        )

    def test_window_output_conjunct_stays_outside_derived_table(self, catalog):
        optimized, trace = rewrite(catalog, self.SQL)
        # The filter on the window's output never enters the derived table.
        assert "Filter[where](d.s > 100)\n    DerivedScan(d)" in optimized.pretty()
        assert any(
            "kept d.s > 100 above window boundary: references window function output"
            in detail
            for _, detail in trace.events
        )

    def test_explain_shows_blocked_rewrites(self, catalog):
        report = catalog.explain(self.SQL, physical=True)
        trace_text = section(report, "Optimizer trace")
        assert "below window boundary (partition keys only)" in trace_text
        assert "above window boundary: references non-partition column(s)" in trace_text
        assert "above window boundary: references window function output" in trace_text

    def test_projection_pruning_keeps_window_inputs(self, catalog):
        optimized, _ = rewrite(
            catalog,
            "SELECT region, rank() OVER (ORDER BY amount) AS r FROM sales",
        )
        # amount feeds only the window: pruning must still keep it in the scan.
        assert "Scan(sales, cols=[region, amount])" in optimized.pretty()

    def test_multi_window_requires_keys_of_every_window(self, catalog):
        _, trace = rewrite(
            catalog,
            "SELECT d.k FROM (SELECT region AS k, "
            "sum(amount) OVER (PARTITION BY region) AS s, "
            "count(*) OVER (PARTITION BY product) AS n FROM sales) d "
            "WHERE d.k = 'east'",
        )
        # region is a partition key of one window but not the other: blocked.
        assert any(
            "kept region = 'east' above window boundary" in detail
            for _, detail in trace.events
        )
