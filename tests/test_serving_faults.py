"""Seeded chaos suite for the serving fault-tolerance plane.

Every failure path the serving stack claims to survive is driven here
*deterministically* via :class:`repro.serving.FaultPlan` — no random
process killing, no sleep-and-hope.  Families:

* **Circuit breaker** — the state machine in isolation, on a fake clock.
* **Deadlines** — executor-checkpoint cancellation, queued-task expiry,
  and the caller-side wait timeout (which must *not* count against the
  worker).
* **Retries** — a killed worker's task is retried to success on the
  respawned worker; exhausted retries surface typed.
* **Ship faults** — corrupted/delayed snapshot payloads recover through
  the CRC + ``need_snapshot`` handshake with correct results.
* **Executor injection** — a planned in-executor fault at query K fires at
  exactly K and leaves queries K±1 untouched.
* **Graceful degradation** — breaker-open thread-fallback serving, half-open
  probe recovery, and queue-depth load shedding (``OverloadError``).
* **Chaos storm** (the acceptance gate) — a mixed multi-client storm with
  two workers killed mid-run under deadlines + retries: zero wrong or torn
  results, every caller-visible failure typed, all successful results
  identical to the fault-free baseline.

``CHAOS_STORM_REQUESTS`` (default 256) sizes the storm;
``CHAOS_KILL_RATE`` (default 0) adds a seeded random kill probability on
top of the planned kills for elevated nightly runs.  To reproduce a chaos
failure, re-run with the same envs: the plan is fully determined by its
seed and ordinals.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.datasets import covid_query_log, load_covid_catalog
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    OverloadError,
    QueryTimeoutError,
    WorkerError,
)
from repro.pipeline import PipelineConfig, generate_interface
from repro.serving import (
    CircuitBreaker,
    FaultPlan,
    InjectedFault,
    InterfaceService,
    ProcessExecutionTier,
    RetryPolicy,
    ServiceConfig,
)
from repro.serving.workers import _Future

GENERATION_CONFIG = PipelineConfig(method="greedy", greedy_max_steps=4)

STORM_REQUESTS = int(os.environ.get("CHAOS_STORM_REQUESTS", "256"))
STORM_KILL_RATE = float(os.environ.get("CHAOS_KILL_RATE", "0"))


class FakeClock:
    """A manually advanced monotonic clock for breaker unit tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, clock, threshold=3, window=10.0, cooldown=5.0) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=threshold,
            window_seconds=window,
            cooldown_seconds=cooldown,
            clock=clock,
        )

    def test_trips_at_threshold_within_window(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state() == "closed"
        assert breaker.record_failure() is True
        assert breaker.state() == "open"
        assert breaker.trips == 1
        assert breaker.acquire() == "rejected"

    def test_window_prunes_old_failures(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=3, window=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # both fall out of the window
        assert breaker.record_failure() is False
        assert breaker.state() == "closed"

    def test_half_open_single_probe_then_recovery(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown=5.0)
        assert breaker.record_failure() is True
        assert breaker.acquire() == "rejected"  # cooling down
        clock.advance(5.0)
        assert breaker.acquire() == "probe"
        # Only one probe at a time: concurrent callers keep degrading.
        assert breaker.acquire() == "rejected"
        breaker.record_success()
        assert breaker.state() == "closed"
        assert breaker.acquire() == "closed"

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.acquire() == "probe"
        breaker.record_probe_failure()
        assert breaker.state() == "open"
        assert breaker.trips == 2
        assert breaker.acquire() == "rejected"  # cooldown restarted
        clock.advance(5.0)
        assert breaker.acquire() == "probe"

    def test_success_outside_half_open_is_a_no_op(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()  # closed: must not clear the window
        assert breaker.record_failure() is True


class TestDeadlines:
    def test_executor_checkpoint_cancels_past_deadline(self):
        catalog = load_covid_catalog()
        with pytest.raises(QueryTimeoutError):
            catalog.execute(
                covid_query_log()[0], use_cache=False, deadline=time.monotonic() - 0.001
            )

    def test_timed_out_query_never_poisons_the_result_cache(self):
        catalog = load_covid_catalog()
        query = covid_query_log()[0]
        with pytest.raises(QueryTimeoutError):
            catalog.execute(query, deadline=time.monotonic() - 0.001)
        # The same query with room to run must compute fresh and succeed.
        assert catalog.execute(query, deadline=time.monotonic() + 60).row_count >= 0

    def test_expired_queued_task_is_dropped_typed(self):
        snapshot = load_covid_catalog().snapshot()
        with ProcessExecutionTier(processes=1) as tier:
            future = tier.submit_execute(
                snapshot, covid_query_log()[0], deadline=time.monotonic() - 1.0
            )
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=60)
            stats = tier.stats_snapshot()
            assert stats["tasks_expired"] == 1
            # The worker never saw the task, so nothing failed or respawned.
            assert stats["workers_respawned"] == 0

    def test_future_wait_timeout_is_not_a_worker_error(self):
        future = _Future()
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=0.01)
        # The future is still live: a late completion is observable.
        future.set_result(41)
        assert future.result(timeout=1) == 41

    def test_worker_side_timeout_comes_back_typed(self):
        """A deadline blowing *inside* the worker crosses the pipe typed."""
        snapshot = load_covid_catalog().snapshot()
        with ProcessExecutionTier(processes=1) as tier:
            # Warm the worker's snapshot cache with a deadline-free task so
            # the timed task is dispatched (not dropped) and expires at an
            # executor checkpoint inside the worker.
            tier.submit_execute(snapshot, covid_query_log()[0]).result(timeout=120)
            future = tier.submit_execute(
                snapshot,
                covid_query_log()[1],
                use_cache=False,
                deadline=time.monotonic() + 0.0005,
            )
            with pytest.raises((QueryTimeoutError, DeadlineExceededError)):
                future.result(timeout=120)
            assert tier.stats_snapshot()["workers_respawned"] == 0


class TestRetries:
    def test_killed_worker_task_retries_to_success(self):
        snapshot = load_covid_catalog().snapshot()
        query = covid_query_log()[0]
        baseline = snapshot.execute(query).rows
        plan = FaultPlan(kill_worker_at_task={0: (1,)})
        with ProcessExecutionTier(processes=1, faults=plan.injector()) as tier:
            result = tier.submit_execute(snapshot, query).result(timeout=120)
            stats = tier.stats_snapshot()
        assert result.rows == baseline
        assert stats["tasks_retried"] >= 1
        assert stats["workers_respawned"] >= 1

    def test_exhausted_retries_surface_worker_error(self):
        snapshot = load_covid_catalog().snapshot()
        plan = FaultPlan(kill_rate=1.0)  # every dispatch kills the worker
        policy = RetryPolicy(max_attempts=2, base_delay_ms=1.0, max_delay_ms=2.0)
        with ProcessExecutionTier(
            processes=1, retry_policy=policy, faults=plan.injector()
        ) as tier:
            future = tier.submit_execute(snapshot, covid_query_log()[0])
            with pytest.raises(WorkerError):
                future.result(timeout=120)
            assert tier.stats_snapshot()["tasks_retried"] == policy.max_attempts - 1

    def test_backoff_is_bounded_and_jittered(self):
        policy = RetryPolicy(max_attempts=5, base_delay_ms=10.0, max_delay_ms=40.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 5):
            backoff = policy.backoff_seconds(attempt, rng)
            base = min(40.0, 10.0 * 2 ** (attempt - 1)) / 1000.0
            assert base <= backoff <= base * 1.5


class TestShipFaults:
    def test_corrupt_ship_recovers_via_integrity_retry(self):
        snapshot = load_covid_catalog().snapshot()
        query = covid_query_log()[0]
        baseline = snapshot.execute(query).rows
        plan = FaultPlan(corrupt_ships=frozenset({1}))
        injector = plan.injector()
        with ProcessExecutionTier(processes=1, faults=injector) as tier:
            result = tier.submit_execute(snapshot, query).result(timeout=120)
            stats = tier.stats_snapshot()
        assert result.rows == baseline
        assert stats["ship_integrity_retries"] == 1
        assert injector.counters()["ships_corrupted"] == 1
        # No respawn: the worker stayed healthy the whole time.
        assert stats["workers_respawned"] == 0

    def test_delayed_ship_still_returns_correct_rows(self):
        snapshot = load_covid_catalog().snapshot()
        query = covid_query_log()[0]
        baseline = snapshot.execute(query).rows
        plan = FaultPlan(delay_ship_ms=50.0, delay_ships=frozenset({1}))
        injector = plan.injector()
        with ProcessExecutionTier(processes=1, faults=injector) as tier:
            result = tier.submit_execute(snapshot, query).result(timeout=120)
        assert result.rows == baseline
        assert injector.counters()["ships_delayed"] == 1


class TestExecutorInjection:
    def test_planned_fault_fires_at_exact_query_ordinal(self):
        plan = FaultPlan(executor_raise_at=frozenset({2}))
        config = ServiceConfig(max_workers=2, fault_plan=plan)
        with InterfaceService(load_covid_catalog(), config) as service:
            session = service.create_session("chaos")
            query = covid_query_log()[0]
            # Ordinal 1: clean.
            first = service.execute(session.session_id, query, use_cache=False)
            # Ordinal 2: the planned fault, raised from inside the executor.
            with pytest.raises(InjectedFault):
                service.execute(session.session_id, query, use_cache=False)
            # Ordinal 3: clean again — the plane is surgical, not sticky.
            third = service.execute(session.session_id, query, use_cache=False)
            assert third.rows == first.rows
            assert service.fault_injector.counters()["executor_raises"] == 1

    def test_hook_is_uninstalled_on_shutdown(self):
        from repro.engine import executor as executor_module

        plan = FaultPlan(executor_raise_at=frozenset({1}))
        service = InterfaceService(
            load_covid_catalog(), ServiceConfig(max_workers=1, fault_plan=plan)
        )
        assert executor_module._fault_hook is not None
        service.shutdown()
        assert executor_module._fault_hook is None


class TestGracefulDegradation:
    def test_breaker_open_falls_back_to_frontend_then_recovers(self):
        config = ServiceConfig(
            max_workers=4,
            execution_tier="process",
            worker_processes=1,
            breaker_failure_threshold=2,
            breaker_window_seconds=30.0,
            breaker_cooldown_seconds=0.3,
        )
        query = covid_query_log()[0]
        with InterfaceService(load_covid_catalog(), config) as service:
            tier = service.process_tier
            session = service.create_session("degraded")
            baseline = service.execute(session.session_id, query, use_cache=False)

            # Trip the breaker the way real worker deaths would feed it.
            assert tier.breaker.record_failure() is False
            assert tier.breaker.record_failure() is True
            assert tier.breaker.state() == "open"

            # Open: requests are served in-frontend — correct, degraded.
            degraded = service.execute(session.session_id, query, use_cache=False)
            assert degraded.rows == baseline.rows
            stats = service.stats_snapshot()
            assert stats["degraded"] >= 1
            assert stats["breaker_state"] == "open"
            assert stats["breaker_trips"] == 1

            # After the cooldown the next request carries the probe; its
            # success closes the breaker and normal dispatch resumes.
            time.sleep(0.35)
            recovered = service.execute(session.session_id, query, use_cache=False)
            assert recovered.rows == baseline.rows
            assert tier.breaker.state() == "closed"

    def test_breaker_open_generation_degrades_to_serial(self):
        queries = covid_query_log()[:3]
        serial = generate_interface(queries, load_covid_catalog(), GENERATION_CONFIG)
        config = ServiceConfig(
            max_workers=2,
            execution_tier="process",
            worker_processes=1,
            breaker_failure_threshold=1,
            breaker_cooldown_seconds=300.0,  # stays open for the whole test
        )
        with InterfaceService(load_covid_catalog(), config) as service:
            service.process_tier.breaker.record_failure()
            session = service.create_session("degraded-gen")
            result = service.generate(session.session_id, queries, GENERATION_CONFIG)
            assert result.interface.fingerprint() == serial.interface.fingerprint()
            assert service.stats_snapshot()["degraded"] >= 1

    def test_queue_watermark_sheds_generate_class_work(self):
        config = ServiceConfig(max_workers=2, max_pending=4, shed_watermark=0.5)
        with InterfaceService(load_covid_catalog(), config) as service:
            session = service.create_session("shed")
            release = threading.Event()
            started = [service._submit(lambda: release.wait(30)) for _ in range(2)]
            try:
                # 2 in flight == watermark (0.5 * 4): heavy work is shed...
                with pytest.raises(OverloadError):
                    service.submit_generate(
                        session.session_id, covid_query_log()[:2], GENERATION_CONFIG
                    )
                # ...while light reads still admit below max_pending, and
                # OverloadError stays catchable as AdmissionError for
                # existing backpressure handling.
                assert issubclass(OverloadError, AdmissionError)
                future = service.submit_execute(session.session_id, covid_query_log()[0])
                assert future.result(timeout=60).row_count >= 0
                assert service.stats_snapshot()["shed"] == 1
            finally:
                release.set()
                for future in started:
                    future.result(timeout=60)


class TestChaosStorm:
    """The acceptance gate: a mixed storm with workers dying mid-run.

    Two workers are killed at planned dispatch ordinals (plus an optional
    ``CHAOS_KILL_RATE`` for nightly soak runs).  With deadlines and retries
    enabled the storm must complete with zero wrong or torn results: every
    successful read matches the fault-free baseline rows, every successful
    generation matches the fault-free fingerprint, and every caller-visible
    failure is one of the three typed outcomes.
    """

    def test_storm_with_worker_kills_yields_no_wrong_results(self):
        clients = 8
        ops_per_client = max(1, STORM_REQUESTS // clients)
        read_queries = covid_query_log()[:6]
        generate_log = covid_query_log()[:3]

        # Fault-free baselines, computed serially on an identical catalog.
        baseline_catalog = load_covid_catalog()
        baseline_rows = {
            query: baseline_catalog.snapshot().execute(query).rows
            for query in read_queries
        }
        serial_fingerprint = generate_interface(
            generate_log, load_covid_catalog(), GENERATION_CONFIG
        ).interface.fingerprint()

        plan = FaultPlan(
            seed=20260807,
            # Both workers die mid-storm; worker 0 twice for good measure.
            kill_worker_at_task={0: (3, 11), 1: (5,)},
            kill_rate=STORM_KILL_RATE,
        )
        config = ServiceConfig(
            max_workers=8,
            profile_workers=0,
            max_sessions=2 * clients,
            max_pending=256,
            execution_tier="process",
            worker_processes=2,
            default_deadline_ms=120_000.0,  # enabled, generous for slow CI
            fault_plan=plan,
        )
        allowed_failures = (QueryTimeoutError, OverloadError, DeadlineExceededError)
        if STORM_KILL_RATE > 0:
            # Elevated-rate soak runs can exhaust the retry budget before
            # any deadline passes; that surfaces as the (typed) WorkerError.
            allowed_failures = allowed_failures + (WorkerError,)

        service = InterfaceService(load_covid_catalog(), config)
        wrong: list[str] = []
        untyped: list[str] = []
        lock = threading.Lock()

        def client_loop(client: int) -> None:
            rng = random.Random(1000 + client)
            session = service.create_session(f"chaos-{client}")
            for sequence in range(ops_per_client):
                roll = rng.random()
                try:
                    if roll < 0.80:
                        query = rng.choice(read_queries)
                        result = service.execute(
                            session.session_id, query, use_cache=(sequence % 2 == 0)
                        )
                        if result.rows != baseline_rows[query]:
                            with lock:
                                wrong.append(f"read mismatch: {query}")
                    elif roll < 0.90:
                        appended = service.ingest(
                            "covid_cases",
                            [[f"Z{client}", f"2021-12-{sequence % 28 + 1:02d}", 1]],
                        )
                        if appended != 1:
                            with lock:
                                wrong.append(f"torn write: appended={appended}")
                    else:
                        generated = service.generate(
                            session.session_id, generate_log, GENERATION_CONFIG
                        )
                        if generated.interface.fingerprint() != serial_fingerprint:
                            with lock:
                                wrong.append("generation fingerprint mismatch")
                except allowed_failures:
                    pass  # bounded, typed, expected under injected faults
                except Exception as exc:  # noqa: BLE001 - the assertion target
                    with lock:
                        untyped.append(f"{type(exc).__name__}: {exc}")
            service.close_session(session.session_id)

        threads = [
            threading.Thread(target=client_loop, args=(i,), name=f"chaos-{i}")
            for i in range(clients)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=280)
            stats = service.stats_snapshot()
            injector = service.fault_injector
        finally:
            service.shutdown()

        assert not any(thread.is_alive() for thread in threads), "storm hung"
        # Zero wrong or torn results; all failures typed.
        assert wrong == [], wrong[:5]
        assert untyped == [], untyped[:5]
        # The faults actually fired and the plane actually recovered.
        assert injector.counters()["workers_killed"] >= 3
        assert stats["workers_respawned"] >= 3
        assert stats["tasks_retried"] >= 1
