"""Tests for the interface model: visualizations, widgets, interactions."""

from __future__ import annotations

import pytest

from repro.errors import InterfaceError
from repro.interface import (
    Channel,
    ChartType,
    ChoiceBinding,
    Encoding,
    InteractionType,
    VisInteraction,
    Visualization,
    WidgetType,
    default_widget_for_cardinality,
    make_widget,
    mark_for_roles,
)
from repro.sql.schema import AttributeRole


class TestVisualizations:
    def make_vis(self, chart_type=ChartType.BAR):
        return Visualization(
            vis_id="G1",
            chart_type=chart_type,
            encodings=[
                Encoding(Channel.X, "state", AttributeRole.NOMINAL),
                Encoding(Channel.Y, "cases", AttributeRole.QUANTITATIVE),
            ],
        )

    def test_channel_lookup(self):
        vis = self.make_vis()
        assert vis.field_for(Channel.X) == "state"
        assert vis.field_for(Channel.COLOR) is None
        assert vis.encoded_fields() == ["state", "cases"]
        assert vis.has_channel(Channel.Y)

    def test_validation_requires_x_and_y(self):
        vis = Visualization(vis_id="G1", chart_type=ChartType.LINE, encodings=[])
        with pytest.raises(InterfaceError):
            vis.validate()

    def test_validation_rejects_duplicate_channels(self):
        vis = Visualization(
            vis_id="G1",
            chart_type=ChartType.BAR,
            encodings=[
                Encoding(Channel.X, "a", AttributeRole.NOMINAL),
                Encoding(Channel.Y, "b", AttributeRole.QUANTITATIVE),
                Encoding(Channel.X, "c", AttributeRole.NOMINAL),
            ],
        )
        with pytest.raises(InterfaceError):
            vis.validate()

    def test_table_chart_needs_no_encodings(self):
        Visualization(vis_id="G1", chart_type=ChartType.TABLE).validate()

    @pytest.mark.parametrize(
        "x_role,y_role,expected",
        [
            (AttributeRole.TEMPORAL, AttributeRole.QUANTITATIVE, ChartType.LINE),
            (AttributeRole.NOMINAL, AttributeRole.QUANTITATIVE, ChartType.BAR),
            (AttributeRole.ORDINAL, AttributeRole.QUANTITATIVE, ChartType.BAR),
            (AttributeRole.QUANTITATIVE, AttributeRole.QUANTITATIVE, ChartType.SCATTER),
            (AttributeRole.QUANTITATIVE, AttributeRole.NOMINAL, ChartType.BAR),
            (AttributeRole.NOMINAL, AttributeRole.NOMINAL, ChartType.TABLE),
        ],
    )
    def test_mark_for_roles(self, x_role, y_role, expected):
        assert mark_for_roles(x_role, y_role) is expected

    def test_describe_mentions_encodings(self):
        assert "x -> state" in self.make_vis().describe()


class TestWidgets:
    def test_make_widget_validates(self):
        widget = make_widget(
            "W1",
            WidgetType.RADIO,
            "Region",
            [ChoiceBinding(0, "any_1")],
            options=["South", "Northeast"],
        )
        assert widget.is_discrete()
        assert widget.choice_ids == ["any_1"]
        assert widget.tree_indices == [0]

    def test_widget_without_bindings_rejected(self):
        with pytest.raises(InterfaceError):
            make_widget("W1", WidgetType.TOGGLE, "x", [])

    def test_discrete_widget_needs_options(self):
        with pytest.raises(InterfaceError):
            make_widget("W1", WidgetType.DROPDOWN, "x", [ChoiceBinding(0, "c")], options=["only"])

    def test_continuous_widget_needs_domain(self):
        with pytest.raises(InterfaceError):
            make_widget("W1", WidgetType.RANGE_SLIDER, "x", [ChoiceBinding(0, "c")])
        widget = make_widget(
            "W2", WidgetType.RANGE_SLIDER, "x", [ChoiceBinding(0, "c")], domain=(0, 10)
        )
        assert widget.is_continuous()

    def test_boolean_widget(self):
        widget = make_widget("W1", WidgetType.TOGGLE, "Filter", [ChoiceBinding(0, "opt_1")], default=True)
        assert widget.is_boolean()

    @pytest.mark.parametrize(
        "cardinality,expected",
        [(2, WidgetType.BUTTON_GROUP), (4, WidgetType.RADIO), (9, WidgetType.DROPDOWN)],
    )
    def test_default_widget_for_cardinality(self, cardinality, expected):
        assert default_widget_for_cardinality(cardinality) is expected

    def test_linked_bindings_across_trees(self):
        widget = make_widget(
            "W1",
            WidgetType.BUTTON_GROUP,
            "Region",
            [ChoiceBinding(0, "a"), ChoiceBinding(1, "b")],
            options=["South", "Northeast"],
        )
        assert widget.tree_indices == [0, 1]

    def test_describe(self):
        widget = make_widget(
            "W1", WidgetType.SLIDER, "Threshold", [ChoiceBinding(0, "c")], domain=(0, 5)
        )
        assert "slider" in widget.describe()


class TestInteractions:
    def test_brush_validation(self):
        interaction = VisInteraction(
            interaction_id="I1",
            interaction_type=InteractionType.BRUSH_X,
            source_vis_id="G1",
            attribute="date",
            bindings=[ChoiceBinding(1, "low"), ChoiceBinding(1, "high")],
            target_vis_ids=["G2"],
        )
        interaction.validate()
        assert interaction.is_linked()
        assert interaction.tree_indices == [1]

    def test_unbound_interaction_rejected(self):
        interaction = VisInteraction(
            interaction_id="I1",
            interaction_type=InteractionType.CLICK_SELECT,
            source_vis_id="G1",
            attribute="a",
        )
        with pytest.raises(InterfaceError):
            interaction.validate()

    def test_2d_brush_needs_secondary_attribute(self):
        interaction = VisInteraction(
            interaction_id="I1",
            interaction_type=InteractionType.BRUSH_2D,
            source_vis_id="G1",
            attribute="ra",
            bindings=[ChoiceBinding(0, "a")],
        )
        with pytest.raises(InterfaceError):
            interaction.validate()

    def test_pan_zoom_on_own_chart_is_not_linked(self):
        interaction = VisInteraction(
            interaction_id="I1",
            interaction_type=InteractionType.PAN_ZOOM,
            source_vis_id="G1",
            attribute="ra",
            secondary_attribute="dec",
            bindings=[ChoiceBinding(0, "a")],
            target_vis_ids=["G1"],
        )
        assert not interaction.is_linked()
        assert "pan_zoom" in interaction.describe()
