"""Tests for the columnar Table and QueryResult containers."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, EngineError
from repro.engine.table import QueryResult, Table, result_from_table
from repro.sql.schema import AttributeRole, DataType


class TestTableConstruction:
    def test_from_rows_and_access(self):
        table = Table("t", ["a", "b"], [[1, "x"], [2, "y"]])
        assert table.row_count == 2
        assert table.column("a") == [1, 2]
        assert list(table.rows()) == [(1, "x"), (2, "y")]
        assert table.row(1) == (2, "y")

    def test_from_dicts(self):
        table = Table.from_dicts("t", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert table.column_names == ["a", "b"]
        assert table.to_dicts()[1] == {"a": 3, "b": 4}

    def test_from_columns(self):
        table = Table.from_columns("t", {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert table.row_count == 3

    def test_from_columns_length_mismatch(self):
        with pytest.raises(EngineError):
            Table.from_columns("t", {"a": [1, 2], "b": [1]})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", ["a", "a"])

    def test_row_width_mismatch_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(EngineError):
            table.append([1])

    def test_unknown_column_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(CatalogError):
            table.column("b")

    def test_row_out_of_range(self):
        table = Table("t", ["a"], [[1]])
        with pytest.raises(EngineError):
            table.row(5)

    def test_from_dicts_requires_records(self):
        with pytest.raises(EngineError):
            Table.from_dicts("t", [])


class TestSchemaInference:
    def test_type_inference(self):
        table = Table("t", ["i", "f", "s", "d", "b", "n"], [[1, 1.5, "x", "2021-12-01", True, None]])
        schema = table.schema()
        assert schema.column("i").data_type is DataType.INTEGER
        assert schema.column("f").data_type is DataType.FLOAT
        assert schema.column("s").data_type is DataType.TEXT
        assert schema.column("d").data_type is DataType.DATE
        assert schema.column("b").data_type is DataType.BOOLEAN
        assert schema.column("n").data_type is DataType.NULL

    def test_mixed_numeric_unifies_to_float(self):
        table = Table("t", ["x"], [[1], [2.5]])
        assert table.schema().column("x").data_type is DataType.FLOAT

    def test_role_inference(self):
        rows = [[i, f"cat{i % 3}", float(i)] for i in range(50)]
        table = Table("t", ["id", "category", "value"], rows)
        schema = table.schema()
        assert schema.column("value").resolved_role() is AttributeRole.QUANTITATIVE
        assert schema.column("category").resolved_role() is AttributeRole.NOMINAL

    def test_low_cardinality_int_is_ordinal(self):
        table = Table("t", ["level"], [[1], [2], [3], [1], [2]])
        assert table.schema().column("level").resolved_role() is AttributeRole.ORDINAL

    def test_distinct_values_and_range(self):
        table = Table("t", ["x"], [[3], [1], [2], [None], [2]])
        assert table.distinct_values("x") == [1, 2, 3]
        assert table.value_range("x") == (1, 3)

    def test_value_range_empty(self):
        table = Table("t", ["x"], [[None]])
        assert table.value_range("x") is None


class TestQueryResult:
    def test_basic_accessors(self):
        table = Table("t", ["a", "b"], [[1, 2], [3, 4]])
        result = result_from_table(table)
        assert isinstance(result, QueryResult)
        assert result.columns == ["a", "b"]
        assert result.column_values("b") == [2, 4]
        assert result.first() == (1, 2)
        assert len(result) == 2
        assert result.to_dicts()[0] == {"a": 1, "b": 2}

    def test_unknown_column(self):
        result = result_from_table(Table("t", ["a"], [[1]]))
        with pytest.raises(EngineError):
            result.column_values("zzz")

    def test_to_table_round_trip(self):
        result = result_from_table(Table("t", ["a"], [[1], [2]]))
        table = result.to_table("round")
        assert table.column("a") == [1, 2]
